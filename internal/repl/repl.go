// Package repl defines the primary→standby WAL replication protocol and
// the lease/fencing arithmetic the failover machinery is built on. The
// transport integration (shipping a live server's WAL, applying frames
// into a standby engine) lives in internal/server; this package is the
// pure, fuzzable core: fixed-layout checksummed messages, the handshake
// state rules, and the lease timing contract.
//
// # Protocol
//
// A standby dials the primary's replication listener and the two sides
// speak fixed-size little-endian messages, each carrying a CRC32C over
// everything before the checksum:
//
//	hello     : tag(1) ver(1) epoch(8) walID(8) applied(8) crc(4) = 30 B  standby → primary
//	welcome   : tag(1) epoch(8) walID(8) commit(8) crc(4)         = 29 B  primary → standby
//	reset     : tag(1) oldest(8) crc(4)                           = 13 B  primary → standby
//	fence     : tag(1) epoch(8) crc(4)                            = 13 B  either direction
//	data      : tag(1) seq(8) walframe(29) crc(4)                 = 42 B  primary → standby
//	heartbeat : tag(1) epoch(8) commit(8) crc(4)                  = 21 B  primary → standby
//	ack       : tag(1) applied(8) crc(4)                          = 13 B  standby → primary
//
// The data payload is a verbatim v2 WAL frame (internal/wire), which
// carries its own CRC32C; the outer checksum additionally covers the tag
// and sequence number, so a corrupted length-preserving stream is detected
// at the message layer before the frame layer ever parses.
//
// # Handshake
//
// hello carries the standby's fencing epoch, the WAL identity it last
// replicated from (0 when fresh), and the primary-log position it has
// durably applied. The primary answers one of:
//
//   - welcome: positions match — streaming resumes from hello.applied.
//     commit is the primary's current end-of-log, so the standby knows
//     when it has caught up.
//   - reset: the standby's position is unusable (different WAL identity,
//     or the frames it needs have rotated past retention). oldest is the
//     first position still available; only an empty standby may accept a
//     reset — one with applied state must be wiped by an operator, since
//     re-applying from oldest would double-count.
//   - fence: the standby's epoch is ahead of the primary's — the primary
//     has been superseded by a promotion it did not observe. The primary
//     must stop acking writes (it is a zombie); the standby must not
//     follow it.
//
// # Epochs and fencing
//
// The fencing epoch is a monotone uint64 stamped into the WAL itself (an
// epoch frame after each segment header, see internal/wire) and carried
// on every hello, welcome, fence, and heartbeat. A standby promotes by
// incrementing the highest epoch it has applied and durably stamping the
// new epoch before serving. Any node that observes a peer with a higher
// epoch is fenced: it stops acknowledging writes immediately. Because the
// epoch rides the replicated WAL, a rejoining zombie cannot disguise its
// staleness — its log is stamped with the old epoch.
//
// # Lease math
//
// The lease D is the failure-detection budget. The primary heartbeats
// every D/4 (HeartbeatEvery), so a healthy standby sees at least three
// renewals per lease even with one loss. The standby promotes when it has
// received nothing — data or heartbeat — for D (the lease expired). The
// primary self-fences when it has heard no ack for 3D/4 (FenceAfter):
// strictly before the standby's promotion deadline, so under a symmetric
// partition the zombie stops acking writes before the standby starts
// serving. The usual lease assumption applies: the two clocks may be
// offset but tick at comparable rates.
package repl

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
	"time"

	"oij/internal/wire"
)

// ProtocolVersion is the replication wire version carried on hello.
const ProtocolVersion = 1

// Message tags. The range is disjoint from the client wire protocol's
// (0x01–0x07) and the WAL frame tags, so a stream cross-wired to the
// wrong port fails the first read instead of misparsing.
const (
	TagHello     byte = 0x11
	TagWelcome   byte = 0x12
	TagReset     byte = 0x13
	TagFence     byte = 0x14
	TagData      byte = 0x15
	TagHeartbeat byte = 0x16
	TagAck       byte = 0x17
)

// Message sizes on the wire.
const (
	HelloBytes     = 1 + 1 + 8 + 8 + 8 + 4
	WelcomeBytes   = 1 + 8 + 8 + 8 + 4
	ResetBytes     = 1 + 8 + 4
	FenceBytes     = 1 + 8 + 4
	DataBytes      = 1 + 8 + wire.WALFrameBytes + 4
	HeartbeatBytes = 1 + 8 + 8 + 4
	AckBytes       = 1 + 8 + 4
)

// MaxMessageBytes is the largest message on the wire (a data frame).
const MaxMessageBytes = DataBytes

// ErrBadMessage marks a replication message whose tag, version, or
// checksum is invalid. The stream cannot resynchronize past it; callers
// drop the connection and re-handshake.
var ErrBadMessage = errors.New("repl: message corrupt")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Hello is the standby's handshake: its fencing epoch, the WAL identity
// it last replicated from (0 when fresh), and the primary-log position it
// has durably applied.
type Hello struct {
	Version byte
	Epoch   uint64
	WALID   uint64
	Applied uint64
}

// Welcome is the primary's handshake acceptance: its epoch, its WAL
// identity (the standby records it for reconnects), and the current
// end-of-log position (the catch-up target).
type Welcome struct {
	Epoch  uint64
	WALID  uint64
	Commit uint64
}

// Message is one decoded replication message; the fields used depend on
// Kind.
type Message struct {
	Kind    byte
	Hello   Hello   // TagHello
	Welcome Welcome // TagWelcome
	Oldest  uint64  // TagReset: first position still available
	Epoch   uint64  // TagFence, TagHeartbeat
	Commit  uint64  // TagHeartbeat: primary end-of-log
	Seq     uint64  // TagData: primary-log position of Frame
	Applied uint64  // TagAck: standby's durable position
	// Frame is the verbatim v2 WAL frame a data message carries.
	Frame [wire.WALFrameBytes]byte
}

// stamp writes the CRC32C of b[:len(b)-4] into the last four bytes.
func stamp(b []byte) {
	n := len(b) - 4
	binary.LittleEndian.PutUint32(b[n:], crc32.Checksum(b[:n], castagnoli))
}

// check verifies the trailing CRC32C.
func check(b []byte) bool {
	n := len(b) - 4
	return binary.LittleEndian.Uint32(b[n:]) == crc32.Checksum(b[:n], castagnoli)
}

// AppendMessage encodes m onto dst and returns the extended slice. It is
// the allocation-free core both the Writer and tests use.
func AppendMessage(dst []byte, m Message) ([]byte, error) {
	var buf [MaxMessageBytes]byte
	b := buf[:0]
	switch m.Kind {
	case TagHello:
		b = buf[:HelloBytes]
		b[0], b[1] = TagHello, m.Hello.Version
		binary.LittleEndian.PutUint64(b[2:], m.Hello.Epoch)
		binary.LittleEndian.PutUint64(b[10:], m.Hello.WALID)
		binary.LittleEndian.PutUint64(b[18:], m.Hello.Applied)
	case TagWelcome:
		b = buf[:WelcomeBytes]
		b[0] = TagWelcome
		binary.LittleEndian.PutUint64(b[1:], m.Welcome.Epoch)
		binary.LittleEndian.PutUint64(b[9:], m.Welcome.WALID)
		binary.LittleEndian.PutUint64(b[17:], m.Welcome.Commit)
	case TagReset:
		b = buf[:ResetBytes]
		b[0] = TagReset
		binary.LittleEndian.PutUint64(b[1:], m.Oldest)
	case TagFence:
		b = buf[:FenceBytes]
		b[0] = TagFence
		binary.LittleEndian.PutUint64(b[1:], m.Epoch)
	case TagData:
		b = buf[:DataBytes]
		b[0] = TagData
		binary.LittleEndian.PutUint64(b[1:], m.Seq)
		copy(b[9:], m.Frame[:])
	case TagHeartbeat:
		b = buf[:HeartbeatBytes]
		b[0] = TagHeartbeat
		binary.LittleEndian.PutUint64(b[1:], m.Epoch)
		binary.LittleEndian.PutUint64(b[9:], m.Commit)
	case TagAck:
		b = buf[:AckBytes]
		b[0] = TagAck
		binary.LittleEndian.PutUint64(b[1:], m.Applied)
	default:
		return dst, fmt.Errorf("repl: encode: unknown tag 0x%02x", m.Kind)
	}
	stamp(b)
	return append(dst, b...), nil
}

// sizeOf maps a tag to its fixed message size (0 = unknown tag).
func sizeOf(tag byte) int {
	switch tag {
	case TagHello:
		return HelloBytes
	case TagWelcome:
		return WelcomeBytes
	case TagReset:
		return ResetBytes
	case TagFence:
		return FenceBytes
	case TagData:
		return DataBytes
	case TagHeartbeat:
		return HeartbeatBytes
	case TagAck:
		return AckBytes
	}
	return 0
}

// DecodeMessage parses one message from the front of b, returning the
// message and its encoded size. It returns ErrBadMessage on an unknown
// tag or checksum mismatch and io.ErrUnexpectedEOF when b holds only a
// truncated message (callers read more and retry).
func DecodeMessage(b []byte) (Message, int, error) {
	if len(b) == 0 {
		return Message{}, 0, io.ErrUnexpectedEOF
	}
	n := sizeOf(b[0])
	if n == 0 {
		return Message{}, 0, fmt.Errorf("%w: unknown tag 0x%02x", ErrBadMessage, b[0])
	}
	if len(b) < n {
		return Message{}, 0, io.ErrUnexpectedEOF
	}
	b = b[:n]
	if !check(b) {
		return Message{}, 0, fmt.Errorf("%w: checksum mismatch on tag 0x%02x", ErrBadMessage, b[0])
	}
	m := Message{Kind: b[0]}
	switch b[0] {
	case TagHello:
		m.Hello = Hello{
			Version: b[1],
			Epoch:   binary.LittleEndian.Uint64(b[2:]),
			WALID:   binary.LittleEndian.Uint64(b[10:]),
			Applied: binary.LittleEndian.Uint64(b[18:]),
		}
		if m.Hello.Version != ProtocolVersion {
			return Message{}, 0, fmt.Errorf("%w: protocol version %d (want %d)",
				ErrBadMessage, m.Hello.Version, ProtocolVersion)
		}
	case TagWelcome:
		m.Welcome = Welcome{
			Epoch:  binary.LittleEndian.Uint64(b[1:]),
			WALID:  binary.LittleEndian.Uint64(b[9:]),
			Commit: binary.LittleEndian.Uint64(b[17:]),
		}
	case TagReset:
		m.Oldest = binary.LittleEndian.Uint64(b[1:])
	case TagFence:
		m.Epoch = binary.LittleEndian.Uint64(b[1:])
	case TagData:
		m.Seq = binary.LittleEndian.Uint64(b[1:])
		copy(m.Frame[:], b[9:9+wire.WALFrameBytes])
	case TagHeartbeat:
		m.Epoch = binary.LittleEndian.Uint64(b[1:])
		m.Commit = binary.LittleEndian.Uint64(b[9:])
	case TagAck:
		m.Applied = binary.LittleEndian.Uint64(b[1:])
	}
	return m, n, nil
}

// Writer encodes replication messages onto a buffered stream. Not safe
// for concurrent use.
type Writer struct {
	w   *bufio.Writer
	buf []byte
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w), buf: make([]byte, 0, MaxMessageBytes)}
}

// Write encodes one message (buffered; call Flush to push to the wire).
func (w *Writer) Write(m Message) error {
	b, err := AppendMessage(w.buf[:0], m)
	if err != nil {
		return err
	}
	_, err = w.w.Write(b)
	return err
}

// Flush pushes buffered messages to the underlying stream.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader decodes replication messages from a buffered stream. Not safe
// for concurrent use.
type Reader struct {
	r   *bufio.Reader
	buf [MaxMessageBytes]byte
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// Read decodes the next message. io.EOF marks a clean end of stream
// between messages; a truncated message is io.ErrUnexpectedEOF; a corrupt
// one is ErrBadMessage (the connection is unusable past it).
func (r *Reader) Read() (Message, error) {
	tag, err := r.r.ReadByte()
	if err != nil {
		return Message{}, err
	}
	n := sizeOf(tag)
	if n == 0 {
		return Message{}, fmt.Errorf("%w: unknown tag 0x%02x", ErrBadMessage, tag)
	}
	b := r.buf[:n]
	b[0] = tag
	if _, err := io.ReadFull(r.r, b[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Message{}, err
	}
	m, _, err := DecodeMessage(b)
	return m, err
}

// Role is a node's place in the replication pair.
type Role int32

// Roles. RoleFenced is terminal for a process: a fenced node refuses
// writes until an operator restarts it (typically as a standby of the
// promoted peer).
const (
	RoleNone Role = iota // replication not configured: a plain single node
	RolePrimary
	RoleStandby
	RoleFenced
)

var roleNames = [...]string{"none", "primary", "standby", "fenced"}

// String returns the role's export name.
func (r Role) String() string {
	if r < 0 || int(r) >= len(roleNames) {
		return "unknown"
	}
	return roleNames[r]
}

// ParseRole maps an export name back to a Role (for tests and tools).
func ParseRole(s string) (Role, error) {
	for i, n := range roleNames {
		if n == s {
			return Role(i), nil
		}
	}
	return 0, fmt.Errorf("repl: unknown role %q", s)
}

// Serving reports whether a node in this role answers client requests.
func (r Role) Serving() bool { return r == RoleNone || r == RolePrimary }

// HeartbeatEvery returns the primary's heartbeat cadence for a lease:
// D/4, floored at a millisecond so a degenerate lease cannot spin.
func HeartbeatEvery(lease time.Duration) time.Duration {
	d := lease / 4
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// FenceAfter returns how long a primary waits without any standby ack
// before self-fencing: 3D/4, strictly inside the standby's promotion
// deadline D, so the zombie stops acking before the standby starts
// serving.
func FenceAfter(lease time.Duration) time.Duration {
	return lease * 3 / 4
}

// Lease is a renewable failure-detection deadline. The zero value is not
// armed; NewLease arms it. Safe for concurrent use (the holder renews
// from the stream goroutine while a watchdog checks expiry).
type Lease struct {
	d time.Duration

	mu   sync.Mutex
	last time.Time
}

// NewLease arms a lease of duration d starting at now. d <= 0 returns a
// disarmed lease that never expires (auto-failover off).
func NewLease(d time.Duration, now time.Time) *Lease {
	l := &Lease{d: d}
	l.last = now
	return l
}

// Duration returns the armed lease duration (0 = disarmed).
func (l *Lease) Duration() time.Duration { return l.d }

// Renew marks liveness observed at now. Renewals never move time
// backwards, so an out-of-order renewal cannot shorten the lease.
func (l *Lease) Renew(now time.Time) {
	l.mu.Lock()
	if now.After(l.last) {
		l.last = now
	}
	l.mu.Unlock()
}

// Expired reports whether the lease has run out at now. A disarmed lease
// never expires.
func (l *Lease) Expired(now time.Time) bool {
	if l.d <= 0 {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return now.Sub(l.last) >= l.d
}

// Remaining returns the time left before expiry at now (0 when already
// expired; the full duration when disarmed renewals keep it alive).
func (l *Lease) Remaining(now time.Time) time.Duration {
	if l.d <= 0 {
		return l.d
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	rem := l.d - now.Sub(l.last)
	if rem < 0 {
		return 0
	}
	return rem
}
