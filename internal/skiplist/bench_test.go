package skiplist

import (
	"math/rand"
	"testing"
)

// benchPut inserts n keys drawn by gen into a fresh list, with eviction
// keeping roughly `live` entries resident — the steady-state streaming
// pattern of the time-travel index.
func benchPut(b *testing.B, live int64, gen func(i int64, rng *rand.Rand) int64) {
	rng := rand.New(rand.NewSource(1))
	l := New[int64, float64](1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := gen(int64(i), rng)
		l.Put(k, float64(i))
		if int64(i)%1024 == 1023 {
			l.EvictBefore(int64(i) - live)
		}
	}
}

func BenchmarkPutAscending(b *testing.B) {
	benchPut(b, 1<<62, func(i int64, _ *rand.Rand) int64 { return i })
}

func BenchmarkPutDisordered1K(b *testing.B) {
	benchPut(b, 1<<62, func(i int64, rng *rand.Rand) int64 { return i - rng.Int63n(1000) })
}

func BenchmarkPutDisordered30K(b *testing.B) {
	benchPut(b, 1<<62, func(i int64, rng *rand.Rand) int64 { return i - rng.Int63n(30_000) })
}

func BenchmarkPutDisordered30KEvicted(b *testing.B) {
	benchPut(b, 60_000, func(i int64, rng *rand.Rand) int64 { return i - rng.Int63n(30_000) })
}

func BenchmarkScan(b *testing.B) {
	l := New[int64, float64](1)
	for i := int64(0); i < 100_000; i++ {
		l.Put(i, float64(i))
	}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		lo := int64(i%50_000) + 10_000
		l.AscendRange(lo, lo+1000, func(_ int64, v float64) bool {
			sink += v
			return true
		})
	}
	_ = sink
}
