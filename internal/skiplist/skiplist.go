// Package skiplist implements the single-writer/multiple-reader (SWMR)
// lock-free skip-list underpinning the paper's "time-travel" index
// (Algorithms 1 and 2 of the paper).
//
// Exactly one goroutine may mutate a list (Put, EvictBefore); any number of
// goroutines may concurrently read it (Get, SeekGE, Ascend...). The insert
// path first wires the new node's next pointers while the node is still
// private (the paper's relaxed stores), then publishes it bottom-up through
// the predecessors' next pointers (the paper's release stores); readers load
// next pointers through sync/atomic, giving them at least the
// acquire semantics Algorithm 1 requires. Go's atomics are sequentially
// consistent, which is strictly stronger than the paper's release/acquire
// pairs, so the published node is atomically visible with fully initialized
// contents.
//
// Two engineering details keep the write path cheap on the streaming hot
// path: nodes embed a fixed-size tower (one allocation per insert, no
// separate pointer slice), and the writer keeps a splice hint — the
// predecessor set of its previous insert — so mostly-ascending timestamp
// sequences splice in O(1) amortized instead of O(log n) from the head.
//
// Duplicate keys are allowed and kept adjacent in insertion order, which
// the time layer of the time-travel index relies on (several tuples may
// carry the same event timestamp).
package skiplist

import (
	"sync/atomic"
)

// MaxHeight bounds the tower height of any node. 12 levels with the 1/4
// branching factor used below index ~16M entries per list, far more than
// any workload in the paper buffers per key.
const MaxHeight = 12

// Ordered is the constraint for skip-list keys: the time layer uses int64
// event timestamps and the key layer uint64 join keys.
type Ordered interface {
	~int64 | ~uint64 | ~int | ~uint32 | ~int32
}

// Arena granularity: nodes are bump-allocated out of contiguous slabs so
// that (mostly time-ordered) inserts land adjacent in memory and window
// scans walk prefetch-friendly sequential lines instead of pointer-chasing
// scattered heap objects. Eviction removes a prefix of the time order,
// which is also roughly a prefix of the slab order, so whole slabs become
// collectable together. Slabs start tiny and double: workloads with very
// many keys hold millions of (mostly small) lists, and a fixed large slab
// would multiply their footprint by orders of magnitude.
const (
	minSlabSize = 8
	maxSlabSize = 512
)

type node[K Ordered, V any] struct {
	// Hot fields first: a level-0 scan touches key, val and next[0],
	// which share the node's first cache lines.
	key    K
	val    V
	height int32
	next   [MaxHeight]atomic.Pointer[node[K, V]]
}

// List is a SWMR skip-list from K to V.
//
// The zero value is not usable; call New.
type List[K Ordered, V any] struct {
	head *node[K, V]
	// length is maintained by the writer and read by anyone; it counts
	// live (non-evicted) entries.
	length atomic.Int64
	// rng is the writer-private xorshift state used to draw tower
	// heights; it needs no synchronization because only the single
	// writer calls Put.
	rng uint64
	// hint caches the predecessor set of the previous Put; valid only
	// while hintKey stays <= the next inserted key and no eviction has
	// run since (EvictBefore invalidates it). Writer-private.
	hint      [MaxHeight]*node[K, V]
	hintKey   K
	hintValid bool
	// slab is the writer-private allocation arena (see minSlabSize).
	slab    []node[K, V]
	slabPos int
}

// alloc bump-allocates one zeroed node from the arena, growing slabs
// geometrically up to maxSlabSize.
func (l *List[K, V]) alloc() *node[K, V] {
	if l.slabPos == len(l.slab) {
		next := len(l.slab) * 2
		if next < minSlabSize {
			next = minSlabSize
		}
		if next > maxSlabSize {
			next = maxSlabSize
		}
		l.slab = make([]node[K, V], next)
		l.slabPos = 0
	}
	n := &l.slab[l.slabPos]
	l.slabPos++
	return n
}

// New returns an empty list. seed varies the height sequence between lists
// so sibling indexes do not develop identical (pathological) shapes.
func New[K Ordered, V any](seed uint64) *List[K, V] {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &List[K, V]{
		head: &node[K, V]{height: MaxHeight},
		rng:  seed,
	}
}

// randomHeight draws a tower height with P(h >= k+1 | h >= k) = 1/4.
func (l *List[K, V]) randomHeight() int {
	x := l.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	l.rng = x
	h := 1
	for h < MaxHeight && x&3 == 0 {
		h++
		x >>= 2
	}
	return h
}

// Len returns the number of live entries.
func (l *List[K, V]) Len() int { return int(l.length.Load()) }

// Put inserts key with value v after any existing entries with the same
// key. Only the single writer goroutine may call Put.
func (l *List[K, V]) Put(key K, v V) {
	// Phase 1 (paper Alg. 2, lines 1-11): locate, at every level, the
	// last node whose key is <= key (so duplicates append after their
	// equals), recording it in pre. Ascending inserts resume from the
	// previous splice point instead of the head.
	var pre [MaxHeight]*node[K, V]
	n := l.head
	useHint := l.hintValid && key >= l.hintKey
	if useHint {
		n = l.hint[MaxHeight-1]
	}
	for level := MaxHeight - 1; level >= 0; level-- {
		// Finger search: the previous insert's predecessor at this
		// level may be further ahead than the position carried down
		// from the level above; jump to whichever is closer to key
		// (both are valid level-`level` predecessors with key <=
		// hintKey <= key).
		if useHint && l.hint[level].key > n.key {
			n = l.hint[level]
		}
		for {
			next := n.next[level].Load()
			if next == nil || next.key > key {
				break
			}
			n = next
		}
		pre[level] = n
	}

	// Phase 2 (lines 12-16): build the private node, wire its next
	// pointers, then publish bottom-up. Until the level-0 predecessor is
	// updated no reader can observe the node; after it, readers see a
	// fully formed node at level 0 and possibly-later at upper levels,
	// which only affects search speed, never correctness.
	h := l.randomHeight()
	nn := l.alloc()
	nn.key, nn.val, nn.height = key, v, int32(h)
	for i := 0; i < h; i++ {
		nn.next[i].Store(pre[i].next[i].Load())
	}
	for i := 0; i < h; i++ {
		pre[i].next[i].Store(nn)
	}
	l.length.Add(1)

	// Remember the splice for the next (likely >=) insert.
	l.hint = pre
	for i := 0; i < h; i++ {
		l.hint[i] = nn
	}
	l.hintKey = key
	l.hintValid = true
}

// Get returns the value of the first entry with the given key.
func (l *List[K, V]) Get(key K) (V, bool) {
	n := l.seekGE(key)
	if n != nil && n.key == key {
		return n.val, true
	}
	var zero V
	return zero, false
}

// Contains reports whether an entry with the given key exists.
func (l *List[K, V]) Contains(key K) bool {
	n := l.seekGE(key)
	return n != nil && n.key == key
}

// seekGE returns the first node with key >= target, or nil. This is the
// paper's Algorithm 1 search loop: descend while the successor overshoots,
// advance while it undershoots, loading every next pointer atomically.
func (l *List[K, V]) seekGE(target K) *node[K, V] {
	n := l.head
	for level := MaxHeight - 1; level >= 0; level-- {
		for {
			next := n.next[level].Load()
			if next == nil || next.key >= target {
				break
			}
			n = next
		}
	}
	return n.next[0].Load()
}

// Min returns the smallest key in the list.
func (l *List[K, V]) Min() (K, V, bool) {
	n := l.head.next[0].Load()
	if n == nil {
		var zk K
		var zv V
		return zk, zv, false
	}
	return n.key, n.val, true
}

// AscendRange calls fn for every entry with lo <= key <= hi in ascending
// key order (duplicates in insertion order) and stops early if fn returns
// false. It returns the number of entries visited. Safe for concurrent use
// with the writer.
func (l *List[K, V]) AscendRange(lo, hi K, fn func(key K, v V) bool) int {
	visited := 0
	for n := l.seekGE(lo); n != nil && n.key <= hi; n = n.next[0].Load() {
		visited++
		if !fn(n.key, n.val) {
			break
		}
	}
	return visited
}

// Ascend calls fn for every entry with key >= lo in ascending order until
// fn returns false.
func (l *List[K, V]) Ascend(lo K, fn func(key K, v V) bool) {
	for n := l.seekGE(lo); n != nil; n = n.next[0].Load() {
		if !fn(n.key, n.val) {
			return
		}
	}
}

// All calls fn for every entry in ascending order until fn returns false.
func (l *List[K, V]) All(fn func(key K, v V) bool) {
	for n := l.head.next[0].Load(); n != nil; n = n.next[0].Load() {
		if !fn(n.key, n.val) {
			return
		}
	}
}

// EvictBefore unlinks every entry with key < bound and returns how many
// were removed. Only the single writer may call it.
//
// Eviction by watermark always removes a prefix of the key order, so the
// unlink is a head-pointer rewire: at every level the head's next pointer
// is advanced past the dying prefix. Evicted nodes keep their forward
// pointers, so a reader that entered the prefix before the rewire still
// walks forward into live nodes and terminates normally — it may observe
// entries that were valid when its scan began, which is the anomaly the
// SWMR design explicitly permits (a scan concurrent with eviction behaves
// as if it ran just before the eviction).
func (l *List[K, V]) EvictBefore(bound K) int {
	first := l.head.next[0].Load()
	if first == nil || first.key >= bound {
		return 0
	}
	// The splice hint may reference dying nodes whose frozen forward
	// pointers would skip entries inserted after the unlink; drop it.
	l.hintValid = false
	// Rewire top-down so that a concurrent reader never descends from a
	// taller level into an already-unlinked shorter prefix.
	for level := MaxHeight - 1; level >= 0; level-- {
		n := l.head.next[level].Load()
		if n == nil || n.key >= bound {
			continue
		}
		for {
			next := n.next[level].Load()
			if next == nil || next.key >= bound {
				break
			}
			n = next
		}
		l.head.next[level].Store(n.next[level].Load())
	}
	// Count the dead prefix (writer-only walk over unlinked nodes).
	removed := 0
	for n := first; n != nil && n.key < bound; n = n.next[0].Load() {
		removed++
	}
	l.length.Add(int64(-removed))
	return removed
}
