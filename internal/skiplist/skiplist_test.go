package skiplist

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	l := New[int64, string](1)
	if l.Len() != 0 {
		t.Fatalf("empty list Len = %d", l.Len())
	}
	if _, ok := l.Get(5); ok {
		t.Fatal("Get on empty list returned ok")
	}
	if _, _, ok := l.Min(); ok {
		t.Fatal("Min on empty list returned ok")
	}
	if n := l.AscendRange(0, 100, func(int64, string) bool { return true }); n != 0 {
		t.Fatalf("AscendRange on empty visited %d", n)
	}
	if got := l.EvictBefore(10); got != 0 {
		t.Fatalf("EvictBefore on empty removed %d", got)
	}
}

func TestPutGetOrdered(t *testing.T) {
	l := New[int64, int](1)
	perm := rand.New(rand.NewSource(7)).Perm(1000)
	for _, v := range perm {
		l.Put(int64(v), v*10)
	}
	if l.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", l.Len())
	}
	for i := 0; i < 1000; i++ {
		got, ok := l.Get(int64(i))
		if !ok || got != i*10 {
			t.Fatalf("Get(%d) = %d,%v", i, got, ok)
		}
	}
	if _, ok := l.Get(1000); ok {
		t.Fatal("Get(1000) should miss")
	}
	// Full iteration must be sorted.
	var keys []int64
	l.All(func(k int64, _ int) bool { keys = append(keys, k); return true })
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Fatal("All iteration out of order")
	}
	if len(keys) != 1000 {
		t.Fatalf("All visited %d keys", len(keys))
	}
}

func TestDuplicateKeysInsertionOrder(t *testing.T) {
	l := New[int64, int](2)
	for i := 0; i < 5; i++ {
		l.Put(7, i)
	}
	l.Put(6, -1)
	l.Put(8, -2)
	var vals []int
	l.AscendRange(7, 7, func(_ int64, v int) bool { vals = append(vals, v); return true })
	if len(vals) != 5 {
		t.Fatalf("visited %d duplicates, want 5", len(vals))
	}
	for i, v := range vals {
		if v != i {
			t.Fatalf("duplicates out of insertion order: %v", vals)
		}
	}
	// Get returns the first duplicate.
	if v, ok := l.Get(7); !ok || v != 0 {
		t.Fatalf("Get(7) = %d,%v; want first inserted 0", v, ok)
	}
}

func TestAscendRangeBounds(t *testing.T) {
	l := New[int64, int](3)
	for i := int64(0); i < 100; i += 2 { // even keys 0..98
		l.Put(i, int(i))
	}
	cases := []struct {
		lo, hi int64
		want   int
	}{
		{0, 98, 50},   // everything
		{1, 97, 48},   // interior, exclusive of endpoints not present
		{10, 10, 1},   // single present key
		{11, 11, 0},   // single absent key
		{-50, -1, 0},  // below range
		{99, 200, 0},  // above range
		{90, 1000, 5}, // upper tail
	}
	for _, c := range cases {
		n := 0
		l.AscendRange(c.lo, c.hi, func(int64, int) bool { n++; return true })
		if n != c.want {
			t.Errorf("AscendRange(%d,%d) visited %d, want %d", c.lo, c.hi, n, c.want)
		}
	}
	// Early stop.
	n := 0
	l.AscendRange(0, 98, func(int64, int) bool { n++; return n < 7 })
	if n != 7 {
		t.Fatalf("early stop visited %d, want 7", n)
	}
}

func TestEvictBefore(t *testing.T) {
	l := New[int64, int](4)
	for i := int64(0); i < 100; i++ {
		l.Put(i, int(i))
	}
	if got := l.EvictBefore(40); got != 40 {
		t.Fatalf("EvictBefore(40) removed %d, want 40", got)
	}
	if l.Len() != 60 {
		t.Fatalf("Len after evict = %d, want 60", l.Len())
	}
	if k, _, ok := l.Min(); !ok || k != 40 {
		t.Fatalf("Min after evict = %d,%v; want 40", k, ok)
	}
	if _, ok := l.Get(39); ok {
		t.Fatal("evicted key still reachable from head")
	}
	if v, ok := l.Get(40); !ok || v != 40 {
		t.Fatal("surviving key lost")
	}
	// Evicting before the minimum is a no-op.
	if got := l.EvictBefore(10); got != 0 {
		t.Fatalf("second EvictBefore removed %d, want 0", got)
	}
	// Evict everything.
	if got := l.EvictBefore(1 << 40); got != 60 {
		t.Fatalf("final EvictBefore removed %d, want 60", got)
	}
	if l.Len() != 0 {
		t.Fatalf("Len = %d after total eviction", l.Len())
	}
	// List remains usable.
	l.Put(5, 5)
	if v, ok := l.Get(5); !ok || v != 5 {
		t.Fatal("list unusable after total eviction")
	}
}

func TestEvictBeforeDuplicates(t *testing.T) {
	l := New[int64, int](5)
	for i := 0; i < 10; i++ {
		l.Put(1, i)
		l.Put(2, i)
	}
	if got := l.EvictBefore(2); got != 10 {
		t.Fatalf("removed %d, want 10", got)
	}
	n := 0
	l.All(func(k int64, _ int) bool {
		if k != 2 {
			t.Fatalf("unexpected surviving key %d", k)
		}
		n++
		return true
	})
	if n != 10 {
		t.Fatalf("%d survivors, want 10", n)
	}
}

// TestQuickMatchesSortedSlice property-tests the list against a sorted
// reference for arbitrary insert sequences and range queries.
func TestQuickMatchesSortedSlice(t *testing.T) {
	f := func(keys []int16, lo, hi int16) bool {
		l := New[int64, int](99)
		ref := make([]int64, 0, len(keys))
		for i, k := range keys {
			l.Put(int64(k), i)
			ref = append(ref, int64(k))
		}
		sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
		if lo > hi {
			lo, hi = hi, lo
		}
		want := 0
		for _, k := range ref {
			if k >= int64(lo) && k <= int64(hi) {
				want++
			}
		}
		got := l.AscendRange(int64(lo), int64(hi), func(int64, int) bool { return true })
		return got == want && l.Len() == len(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEvictionPrefix property-tests that eviction removes exactly the
// keys below the bound.
func TestQuickEvictionPrefix(t *testing.T) {
	f := func(keys []int16, bound int16) bool {
		l := New[int64, int](17)
		below := 0
		for i, k := range keys {
			l.Put(int64(k), i)
			if int64(k) < int64(bound) {
				below++
			}
		}
		removed := l.EvictBefore(int64(bound))
		if removed != below || l.Len() != len(keys)-below {
			return false
		}
		ok := true
		l.All(func(k int64, _ int) bool {
			if k < int64(bound) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSWMRConcurrentReaders stress-tests the single-writer/multi-reader
// contract: one writer inserts ascending timestamps and periodically evicts
// a prefix while readers continuously range-scan. Readers must always see
// internally consistent data: scans over a fixed immutable range (already
// fully inserted, never evicted) must return exactly that range.
func TestSWMRConcurrentReaders(t *testing.T) {
	l := New[int64, int64](11)

	// Phase 1: install an immutable "anchor" range [1_000_000, 1_000_999]
	// that the writer never evicts.
	const anchorLo, anchorHi = int64(1_000_000), int64(1_000_999)
	for k := anchorLo; k <= anchorHi; k++ {
		l.Put(k, k)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	const readers = 4
	errs := make(chan string, readers)

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Anchor scan must be exact.
				n, sum := 0, int64(0)
				last := int64(-1)
				l.AscendRange(anchorLo, anchorHi, func(k int64, v int64) bool {
					if k < last {
						errs <- "scan went backwards"
						return false
					}
					last = k
					n++
					sum += v
					return true
				})
				if n != 1000 {
					errs <- "anchor scan wrong cardinality"
					return
				}
				want := (anchorLo + anchorHi) * 1000 / 2
				if sum != want {
					errs <- "anchor scan wrong sum"
					return
				}
				// Scans over the churning region must stay sorted
				// and never crash.
				last = -1
				l.AscendRange(0, 500_000, func(k int64, _ int64) bool {
					if k < last {
						errs <- "churn scan out of order"
						return false
					}
					last = k
					return true
				})
			}
		}()
	}

	// Writer: churn below the anchor.
	for i := int64(0); i < 200_000; i++ {
		l.Put(i, i)
		if i%1024 == 1023 {
			l.EvictBefore(i - 512)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case e := <-errs:
		t.Fatal(e)
	default:
	}
}

func TestSeedZeroUsable(t *testing.T) {
	l := New[uint64, int](0)
	for i := uint64(0); i < 100; i++ {
		l.Put(i, int(i))
	}
	if l.Len() != 100 {
		t.Fatal("seed-0 list broken")
	}
}

func TestHeightDistribution(t *testing.T) {
	// Tower heights should be geometric-ish: most nodes at height 1 and
	// a non-trivial share above (sanity check on randomHeight, which a
	// broken xorshift would flatten to all-1 or all-max).
	l := New[int64, int](123)
	h1, hMore := 0, 0
	for i := 0; i < 10000; i++ {
		if h := l.randomHeight(); h == 1 {
			h1++
		} else {
			hMore++
		}
	}
	if h1 < 6000 || h1 > 9000 {
		t.Fatalf("height-1 fraction %d/10000 outside [0.6, 0.9]", h1)
	}
	if hMore == 0 {
		t.Fatal("no tall towers at all")
	}
}
