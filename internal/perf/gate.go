package perf

import (
	"fmt"
	"io"
	"text/tabwriter"

	"oij/internal/metrics"
)

// GateOptions tunes the regression decision.
type GateOptions struct {
	// MaxThroughputDrop is the tolerated relative drop of median
	// throughput per gated cell (0.10 = fail beyond a 10% drop).
	MaxThroughputDrop float64
	// MaxP99Inflation is the tolerated relative increase of median p99
	// latency per gated latency cell (0.25 = fail beyond +25%).
	MaxP99Inflation float64
	// Normalize scales the baseline by the ratio of the two reports'
	// calibration scores, so a baseline recorded on different hardware
	// compares in machine-relative terms. Ignored when either report
	// lacks a calibration score.
	Normalize bool
}

// DefaultGateOptions returns the thresholds the local gate uses. CI passes
// wider ones (see .github/workflows/ci.yml) because shared runners are
// noisy and differently sized than the machine that recorded the
// baseline.
func DefaultGateOptions() GateOptions {
	return GateOptions{MaxThroughputDrop: 0.10, MaxP99Inflation: 0.25, Normalize: true}
}

// CellVerdict is the gate's decision for one gated cell. Base summaries
// are post-normalization — the numbers actually compared.
type CellVerdict struct {
	ID        string
	Base      metrics.Summary // throughput, tuples/s
	Fresh     metrics.Summary
	TputRatio float64         // fresh median / base median (1.0 = unchanged)
	BaseP99   metrics.Summary // ns; zero unless a latency cell
	FreshP99  metrics.Summary
	P99Ratio  float64
	Regressed bool
	Reasons   []string
}

// GateResult is the full comparison outcome.
type GateResult struct {
	// CalibrationRatio is fresh-machine speed over baseline-machine speed
	// (1.0 when normalization is off or unavailable).
	CalibrationRatio float64
	Verdicts         []CellVerdict
	// MissingCells are gated baseline cells the fresh run did not
	// measure — treated as failures so gated coverage cannot silently
	// shrink.
	MissingCells []string
	// NewCells are fresh gated cells with no baseline yet (informational;
	// they start being enforced once a new baseline is recorded).
	NewCells []string
	// Regressions counts verdicts with Regressed set.
	Regressions int
}

// OK reports whether the gate passes.
func (g GateResult) OK() bool { return g.Regressions == 0 && len(g.MissingCells) == 0 }

// Gate compares a fresh report against a baseline.
//
// A gated cell regresses only when both conditions hold:
//
//  1. the fresh median throughput is more than MaxThroughputDrop below
//     the (normalized) baseline median, and
//  2. the two sample sets' interquartile ranges do not overlap.
//
// Condition 2 is the noise guard: with pinned repeats the IQR covers the
// observed run-to-run spread, so a median delta inside overlapping IQRs is
// indistinguishable from noise and never fails the gate. Latency cells
// additionally apply the same two-part test to p99 inflation.
func Gate(baseline, fresh *Report, o GateOptions) GateResult {
	ratio := 1.0
	if o.Normalize && baseline.Env.CalibrationOpsPerUS > 0 && fresh.Env.CalibrationOpsPerUS > 0 {
		ratio = fresh.Env.CalibrationOpsPerUS / baseline.Env.CalibrationOpsPerUS
	}
	g := GateResult{CalibrationRatio: ratio}

	freshByID := map[string]Cell{}
	for _, c := range fresh.Cells {
		freshByID[c.ID] = c
	}
	baseSeen := map[string]bool{}

	for _, bc := range baseline.Cells {
		baseSeen[bc.ID] = true
		if !bc.Gated {
			continue
		}
		fc, ok := freshByID[bc.ID]
		if !ok {
			g.MissingCells = append(g.MissingCells, bc.ID)
			continue
		}
		v := CellVerdict{
			ID: bc.ID,
			// A faster fresh machine (ratio > 1) raises the throughput
			// bar and lowers the latency bar proportionally.
			Base:  metrics.Summarize(bc.Throughputs()).Scale(ratio),
			Fresh: metrics.Summarize(fc.Throughputs()),
		}
		if v.Base.Median > 0 {
			v.TputRatio = v.Fresh.Median / v.Base.Median
		}
		if v.TputRatio < 1-o.MaxThroughputDrop && !v.Fresh.IQROverlaps(v.Base) {
			v.Regressed = true
			v.Reasons = append(v.Reasons,
				fmt.Sprintf("median throughput %.1f%% below baseline (limit %.0f%%), IQRs disjoint",
					(1-v.TputRatio)*100, o.MaxThroughputDrop*100))
		}
		if bc.Latency && fc.Latency {
			v.BaseP99 = metrics.Summarize(bc.P99s()).Scale(1 / ratio)
			v.FreshP99 = metrics.Summarize(fc.P99s())
			if v.BaseP99.Median > 0 {
				v.P99Ratio = v.FreshP99.Median / v.BaseP99.Median
			}
			if v.P99Ratio > 1+o.MaxP99Inflation && !v.FreshP99.IQROverlaps(v.BaseP99) {
				v.Regressed = true
				v.Reasons = append(v.Reasons,
					fmt.Sprintf("median p99 latency %.1f%% above baseline (limit +%.0f%%), IQRs disjoint",
						(v.P99Ratio-1)*100, o.MaxP99Inflation*100))
			}
		}
		if v.Regressed {
			g.Regressions++
		}
		g.Verdicts = append(g.Verdicts, v)
	}

	for _, fc := range fresh.Cells {
		if fc.Gated && !baseSeen[fc.ID] {
			g.NewCells = append(g.NewCells, fc.ID)
		}
	}
	return g
}

// WriteTable renders the per-cell comparison for humans (and CI logs).
func (g GateResult) WriteTable(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "cell\tbase med\tfresh med\ttput ratio\tp99 ratio\tverdict")
	for _, v := range g.Verdicts {
		verdict := "ok"
		if v.Regressed {
			verdict = "REGRESSED"
		}
		p99 := "-"
		if v.BaseP99.N > 0 {
			p99 = fmt.Sprintf("%.2f", v.P99Ratio)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%.2f\t%s\t%s\n",
			v.ID, fmtTPS(v.Base.Median), fmtTPS(v.Fresh.Median), v.TputRatio, p99, verdict)
	}
	tw.Flush()
	if g.CalibrationRatio != 1.0 {
		fmt.Fprintf(w, "calibration ratio (fresh/base machine speed): %.3f — baseline scaled accordingly\n", g.CalibrationRatio)
	}
	for _, id := range g.MissingCells {
		fmt.Fprintf(w, "MISSING gated cell (in baseline, not measured): %s\n", id)
	}
	for _, id := range g.NewCells {
		fmt.Fprintf(w, "new gated cell (no baseline yet): %s\n", id)
	}
	for _, v := range g.Verdicts {
		for _, r := range v.Reasons {
			fmt.Fprintf(w, "REGRESSION %s: %s\n", v.ID, r)
		}
	}
}

// fmtTPS renders tuples/second compactly (4.21M/s).
func fmtTPS(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.2fM/s", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fK/s", v/1e3)
	default:
		return fmt.Sprintf("%.0f/s", v)
	}
}
