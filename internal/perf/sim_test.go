package perf

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"oij/internal/agg"
	"oij/internal/engine"
	"oij/internal/harness"
	"oij/internal/server"
	"oij/internal/workload/pattern"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden sim timeline files")

// goldenEnv is the fixed environment fingerprint golden runs embed, so the
// golden file is identical on every machine.
var goldenEnv = Env{GoVersion: "gotest", GOOS: "any", GOARCH: "any", NumCPU: 1, GOMAXPROCS: 1}

func loadScenario(t *testing.T, path string) *pattern.Scenario {
	t.Helper()
	p, err := pattern.LoadProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := pattern.Compile(p, filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// normalizeSimReport zeroes the wall-clock-dependent fields, leaving only
// what the deterministic contract pins: the tuple accounting, interval
// bucketing, offered rates, result totals, and SLO verdicts.
func normalizeSimReport(r *SimReport) {
	r.CreatedAt = time.Time{}
	r.WallElapsedNS = 0
	for i := range r.Intervals {
		r.Intervals[i].WallThroughputTPS = 0
	}
}

// TestSimGoldenTimeline locks the SIM_*.json format: the refjoin drive is
// fully synchronous (results surface at drain), so every field the
// normalizer keeps is a pure function of the profile — byte-stable across
// machines, paces, and Go versions. Regenerate with -update-golden after a
// deliberate format change.
func TestSimGoldenTimeline(t *testing.T) {
	sc := loadScenario(t, filepath.Join("testdata", "sim_golden_profile.json"))
	rep, err := RunSim(sc, SimOptions{
		Engine:  harness.RefJoin,
		Joiners: 1,
		Mode:    engine.OnWatermark,
		Unpaced: true,
		Env:     &goldenEnv,
	})
	if err != nil {
		t.Fatal(err)
	}
	normalizeSimReport(rep)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')

	goldenPath := filepath.Join("testdata", "SIM_sim-golden.json")
	if *updateGolden {
		if err := os.WriteFile(goldenPath, data, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("golden file missing (run with -update-golden): %v", err)
	}
	if string(data) != string(want) {
		t.Fatalf("sim timeline diverged from golden file %s\n--- got ---\n%s", goldenPath, data)
	}

	// The golden file must itself survive the reader's validation.
	if _, err := ReadSimReport(goldenPath); err != nil {
		t.Fatalf("golden file fails ReadSimReport: %v", err)
	}
}

// TestSimDeterministicAccounting runs a live concurrent engine twice over
// the same profile: wall-clock metrics may differ, but the workload-side
// accounting (tuple counts per interval, totals, results) must not.
func TestSimDeterministicAccounting(t *testing.T) {
	sc := loadScenario(t, filepath.Join("testdata", "sim_golden_profile.json"))
	run := func() *SimReport {
		rep, err := RunSim(sc, SimOptions{
			Engine:  harness.ScaleOIJ,
			Joiners: 4,
			Mode:    engine.OnWatermark,
			Unpaced: true,
			Env:     &goldenEnv,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Tuples != b.Tuples || a.Bases != b.Bases || a.Probes != b.Probes {
		t.Fatalf("tuple accounting differs: %d/%d/%d vs %d/%d/%d",
			a.Tuples, a.Bases, a.Probes, b.Tuples, b.Bases, b.Probes)
	}
	// Every base request is answered exactly once in watermark mode.
	if a.Results != a.Bases {
		t.Fatalf("results %d != bases %d", a.Results, a.Bases)
	}
	if len(a.Intervals) != len(b.Intervals) {
		t.Fatalf("interval counts differ: %d vs %d", len(a.Intervals), len(b.Intervals))
	}
	var ivSum int64
	for i := range a.Intervals {
		ia, ib := a.Intervals[i], b.Intervals[i]
		if ia.Tuples != ib.Tuples || ia.Bases != ib.Bases || ia.Probes != ib.Probes ||
			ia.OfferedRateTPS != ib.OfferedRateTPS {
			t.Fatalf("interval %d accounting differs: %+v vs %+v", i, ia, ib)
		}
		ivSum += ia.Tuples
	}
	if ivSum != a.Tuples {
		t.Fatalf("interval tuples sum %d != total %d", ivSum, a.Tuples)
	}
}

// TestSimEngineLatency checks that a paced run actually measures request
// latency: with pacing on, base tuples carry arrival stamps and the
// timeline's quantiles fill in.
func TestSimEngineLatency(t *testing.T) {
	p := pattern.Profile{
		SchemaVersion: pattern.ProfileSchemaVersion,
		Name:          "latency-smoke",
		Seed:          9,
		DurationS:     2,
		TimeScale:     4,
		IntervalS:     1,
		Stream: pattern.StreamSpec{
			RateTPS: 400, Keys: 32, BaseShare: 0.5,
			WindowPreS: 0.5, LatenessS: 0.1,
		},
		Phases: []pattern.Phase{{Name: "all", StartS: 0, EndS: 2}},
	}
	sc, err := pattern.Compile(p, "")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunSim(sc, SimOptions{
		Engine: harness.ScaleOIJ, Joiners: 2, Mode: engine.OnArrival, Env: &goldenEnv,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Results != rep.Bases || rep.Bases == 0 {
		t.Fatalf("results %d, bases %d", rep.Results, rep.Bases)
	}
	sawLatency := false
	for _, iv := range rep.Intervals {
		if iv.P99US > 0 {
			sawLatency = true
		}
		if iv.P50US > iv.P99US {
			t.Fatalf("interval %d: p50 %d > p99 %d", iv.Index, iv.P50US, iv.P99US)
		}
	}
	if !sawLatency {
		t.Fatal("paced run recorded no latency samples")
	}
}

// TestSimTCPDrive drives a live oijd over TCP: every base request must come
// back as a result (one round trip each), and the report's drive metadata
// must say so.
func TestSimTCPDrive(t *testing.T) {
	sc := loadScenario(t, filepath.Join("testdata", "sim_golden_profile.json"))
	srv, err := server.New(server.Config{
		Algorithm: harness.ScaleOIJ,
		Engine: engine.Config{
			Joiners: 2,
			Window:  sc.Window(),
			Agg:     agg.Sum,
			Mode:    engine.OnArrival,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	rep, err := RunSim(sc, SimOptions{
		Addr:    addr.String(),
		Unpaced: true,
		Env:     &goldenEnv,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Drive != "tcp" {
		t.Fatalf("drive %q, want tcp", rep.Drive)
	}
	if rep.Bases == 0 || rep.Results != rep.Bases {
		t.Fatalf("results %d, bases %d (every request must round-trip)", rep.Results, rep.Bases)
	}
	if rep.Nacks != 0 {
		t.Fatalf("unexpected NACKs: %d", rep.Nacks)
	}
}

// TestSimTruncation: a max-tuples cap stops the run early and says so.
func TestSimTruncation(t *testing.T) {
	sc := loadScenario(t, filepath.Join("testdata", "sim_golden_profile.json"))
	rep, err := RunSim(sc, SimOptions{
		Engine: harness.RefJoin, Joiners: 1, Unpaced: true, MaxTuples: 500, Env: &goldenEnv,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Truncated || rep.Tuples != 500 {
		t.Fatalf("truncated=%v tuples=%d, want true/500", rep.Truncated, rep.Tuples)
	}
}

// TestSimReportRoundTrip: WriteFile then ReadSimReport is lossless.
func TestSimReportRoundTrip(t *testing.T) {
	sc := loadScenario(t, filepath.Join("testdata", "sim_golden_profile.json"))
	rep, err := RunSim(sc, SimOptions{
		Engine: harness.RefJoin, Joiners: 1, Unpaced: true, Env: &goldenEnv,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "SIM_x.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSimReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, got) {
		t.Fatal("sim report changed across write/read")
	}
}

// TestEvalSLO pins the verdict logic, including the checked-zero bounds.
func TestEvalSLO(t *testing.T) {
	slo := &pattern.SLOSpec{P99Ms: 10, MaxLagS: 5, CheckNacks: true}
	cases := []struct {
		iv       SimInterval
		ok       bool
		breaches int
	}{
		{SimInterval{P99US: 9000, WatermarkLagS: 4}, true, 0},
		{SimInterval{P99US: 11000}, false, 1},
		{SimInterval{WatermarkLagS: 6}, false, 1},
		{SimInterval{Nacks: 1}, false, 1},
		{SimInterval{Sheds: 50}, true, 0}, // sheds unchecked in this spec
		{SimInterval{P99US: 20000, WatermarkLagS: 9, Nacks: 3}, false, 3},
	}
	for i, c := range cases {
		iv := c.iv
		evalSLO(slo, &iv)
		if iv.SLOOK != c.ok || len(iv.SLOBreaches) != c.breaches {
			t.Errorf("case %d: ok=%v breaches=%v, want ok=%v breaches=%d",
				i, iv.SLOOK, iv.SLOBreaches, c.ok, c.breaches)
		}
	}
	clean := SimInterval{Nacks: 5, Sheds: 5}
	evalSLO(nil, &clean)
	if !clean.SLOOK {
		t.Error("nil SLO must always verdict OK")
	}
}
