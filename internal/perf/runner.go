package perf

import (
	"fmt"
	"io"
	"time"

	"oij/internal/engine"
	"oij/internal/harness"
	"oij/internal/obs"
	"oij/internal/obs/timeline"
	"oij/internal/prof"
	"oij/internal/trace"
	"oij/internal/tuple"
)

// RunOptions configures one sweep execution.
type RunOptions struct {
	// Tag names the produced report (Report.Tag).
	Tag string
	// GitSHA records provenance (best effort; may be empty).
	GitSHA string
	// Repeats overrides the spec's repeat count when > 0.
	Repeats int
	// N overrides the spec's tuples-per-workload when > 0.
	N int
	// Progress, when non-nil, receives one line per completed sample.
	Progress io.Writer
	// Env overrides the captured environment fingerprint (tests skip the
	// calibration microbenchmark this way).
	Env *Env
	// FlightRecorder attaches an always-on flight recorder to every
	// measured engine, so the regression gate proves the recorder's cost
	// under full load is within the noise floor.
	FlightRecorder bool
	// Telemetry attaches the oijd telemetry layer to every measured run:
	// a per-joiner SpaceSaving hot-key sketch observed on the ingest path
	// (the per-tuple cost) and a background timeline sampler ticking at
	// the same per-second cadence oijd uses. The regression gate proves
	// their combined cost under full load is within the noise floor.
	Telemetry bool
	// Profiler attaches the continuous profiler to the whole sweep: a
	// capture ring in ProfileDir receives short periodic CPU slices and
	// heap/mutex/block snapshots while cells run, so the regression gate
	// proves the capturer's duty-cycle cost is within the noise floor —
	// and the ring it leaves behind feeds `oijbench profdiff`.
	Profiler bool
	// ProfileDir is the capture-ring directory when Profiler is set
	// (default "oij-prof-ring").
	ProfileDir string
}

// RunSpec executes every cell of the spec and assembles the report.
//
// Repeats run in rounds — every cell once, then every cell again — so
// slow machine-wide drift (thermal throttling, a noisy CI neighbour)
// spreads across all cells' samples instead of biasing whichever cell it
// coincided with. Workload generation is cached per distinct parameter set
// and shared across engines, thread counts, and repeats, so measured time
// is join time only.
func RunSpec(spec Spec, o RunOptions) (*Report, error) {
	if o.Repeats > 0 {
		spec.Repeats = o.Repeats
	}
	if o.N > 0 {
		spec.N = o.N
	}
	cells, err := spec.Cells()
	if err != nil {
		return nil, err
	}

	gen := map[string][]tuple.Tuple{}
	var fr *trace.Flight
	if o.FlightRecorder {
		fr = trace.NewFlight(512, "")
	}
	if o.Profiler {
		dir := o.ProfileDir
		if dir == "" {
			dir = "oij-prof-ring"
		}
		// A faster duty cycle than the oijd default so even a short gate
		// run leaves several CPU slices in the ring for profdiff.
		pc, err := prof.New(prof.Config{
			Dir:      dir,
			Period:   15 * time.Second,
			CPUSlice: time.Second,
			Retain:   64,
			Flight:   fr,
		})
		if err != nil {
			return nil, fmt.Errorf("perf: profiler: %w", err)
		}
		defer pc.Close()
		pc.CaptureNow("sweep-start")
	}
	for rep := 0; rep < spec.Repeats; rep++ {
		for i := range cells {
			sample, err := runCell(&cells[i], spec, rep, gen, fr, o.Telemetry)
			if err != nil {
				return nil, fmt.Errorf("perf: cell %s (repeat %d): %w", cells[i].ID, rep+1, err)
			}
			cells[i].Samples = append(cells[i].Samples, sample)
			if o.Progress != nil {
				fmt.Fprintf(o.Progress, "perf: [%d/%d] %-60s rep %d/%d  %10.0f tuples/s\n",
					i+1, len(cells), cells[i].ID, rep+1, spec.Repeats, sample.ThroughputTPS)
			}
		}
	}

	env := CaptureEnv()
	if o.Env != nil {
		env = *o.Env
	}
	return &Report{
		SchemaVersion: SchemaVersion,
		Tag:           o.Tag,
		CreatedAt:     time.Now().UTC(),
		GitSHA:        o.GitSHA,
		Env:           env,
		Spec:          spec,
		Cells:         cells,
	}, nil
}

// runCell measures one repeat of one cell.
func runCell(c *Cell, spec Spec, rep int, gen map[string][]tuple.Tuple, fr *trace.Flight, telemetry bool) (Sample, error) {
	wl, err := c.workloadConfig()
	if err != nil {
		return Sample{}, err
	}
	key := fmt.Sprintf("%s/n=%d/w=%d/l=%d/z=%g", c.Workload, c.N, c.WindowUS, c.LatenessUS, c.ZipfS)
	tuples, ok := gen[key]
	if !ok {
		if tuples, err = wl.Generate(); err != nil {
			return Sample{}, err
		}
		gen[key] = tuples
	}

	maxSamples := spec.MaxLatencySamples
	if c.Latency && maxSamples <= 0 {
		maxSamples = 4096
	}
	rc := harness.RunConfig{
		Engine:            c.Engine,
		Workload:          wl,
		Tuples:            tuples,
		Joiners:           c.Threads,
		Mode:              emitModes[c.Mode],
		Paced:             c.Paced,
		MeasureLatency:    c.Latency,
		MaxLatencySamples: maxSamples,
		LatencySeed:       uint64(spec.Seed)*1_000_003 + uint64(rep),
		Instrument:        c.Instrumented,
		Flight:            fr,
	}
	if telemetry {
		// Mirror oijd's telemetry layer: the sketch is observed per tuple
		// on the ingest path, and a background sampler merges shards into
		// timeline points while ingestion runs — the same scrape-vs-observe
		// contention the serving path sees.
		hk := obs.NewHotKeys(c.Threads, 16, func(h uint64) uint64 {
			return engine.HashKey(tuple.Key(h))
		})
		rc.HotKeys = hk
		tl := timeline.New([]string{"hotkey_top1", "hotkey_topk"}, nil)
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			tick := time.NewTicker(100 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case now := <-tick.C:
					top1, topK := hk.TopShare(16)
					tl.Record(now, []float64{top1, topK})
				}
			}
		}()
		defer func() {
			close(stop)
			<-done
		}()
	}
	res, err := harness.Run(rc)
	if err != nil {
		return Sample{}, err
	}
	s := Sample{
		ThroughputTPS:  res.Throughput,
		ElapsedNS:      int64(res.Elapsed),
		Results:        res.Results,
		Unbalancedness: res.Unbalancedness,
	}
	if c.Latency {
		s.P50NS = int64(res.CDF.Quantile(0.50))
		s.P99NS = int64(res.CDF.Quantile(0.99))
		s.P999NS = int64(res.CDF.Quantile(0.999))
	}
	if c.Instrumented {
		s.Effectiveness = res.Effectiveness
	}
	return s, nil
}
