package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"oij/internal/workload/pattern"
)

// SimSchemaVersion is the SIM_*.json timeline-report schema version this
// build writes and accepts. Versioned like BENCH_*.json: the nightly CI
// archives these files, so readers must be able to reject a format they
// don't understand.
const SimSchemaVersion = 1

// SimReport is the on-disk record of one scenario simulation
// (SIM_<profile>.json, written next to BENCH_*.json): the full profile for
// reproducibility, the drive configuration, the environment fingerprint,
// and one row per report interval.
type SimReport struct {
	SchemaVersion int `json:"schema_version"`
	// Profile embeds the exact scenario that ran; re-running the embedded
	// profile with the same seed regenerates the identical tuple sequence.
	Profile pattern.Profile `json:"profile"`
	// Engine/Joiners/Mode describe the measured engine (engine drive) or
	// the remote daemon's configuration knobs the driver chose (TCP drive
	// reports the drive-side view only).
	Engine  string `json:"engine"`
	Joiners int    `json:"joiners"`
	Mode    string `json:"mode"`
	// Drive is "engine" (in-process) or "tcp" (live oijd).
	Drive string `json:"drive"`
	// TimeScale is the effective wall-clock compression the run used.
	TimeScale float64 `json:"time_scale"`
	// Unpaced records that wall pacing was disabled (tests and correctness
	// replays): wall-clock columns are then meaningless.
	Unpaced bool `json:"unpaced,omitempty"`

	CreatedAt     time.Time `json:"created_at"`
	GitSHA        string    `json:"git_sha,omitempty"`
	Env           Env       `json:"env"`
	WallElapsedNS int64     `json:"wall_elapsed_ns"`

	// Totals over all intervals.
	Tuples  int64 `json:"tuples"`
	Bases   int64 `json:"bases"`
	Probes  int64 `json:"probes"`
	Results int64 `json:"results"`
	Nacks   int64 `json:"nacks"`
	Sheds   int64 `json:"sheds"`
	// Truncated records that the run stopped before the profile's
	// simulated duration (a max-tuples cap).
	Truncated bool `json:"truncated,omitempty"`

	// SLOBreachedIntervals counts intervals whose verdict failed (0 when
	// the profile declares no SLO).
	SLOBreachedIntervals int `json:"slo_breached_intervals"`

	Intervals []SimInterval `json:"intervals"`
}

// SimInterval is one timeline row: what happened during one report
// interval of simulated time.
type SimInterval struct {
	Index     int     `json:"index"`
	SimStartS float64 `json:"sim_start_s"`
	SimEndS   float64 `json:"sim_end_s"`

	Tuples int64 `json:"tuples"`
	Bases  int64 `json:"bases"`
	Probes int64 `json:"probes"`
	// OfferedRateTPS is tuples per simulated second — the load curve the
	// profile shaped, independent of time scale.
	OfferedRateTPS float64 `json:"offered_rate_tps"`
	// WallThroughputTPS is tuples per wall second actually achieved.
	WallThroughputTPS float64 `json:"wall_throughput_tps"`

	// Request latency quantiles in µs (wall clock), measured base-arrival
	// to result emission (engine drive) or request round-trip (TCP drive).
	// Zero when the interval carried no measured request.
	P50US int64 `json:"p50_us,omitempty"`
	P99US int64 `json:"p99_us,omitempty"`

	Results int64 `json:"results"`
	Evicted int64 `json:"evicted"`
	// Nacks counts admission/deadline NACKs observed by the driver; Sheds
	// counts server-side probe sheds (TCP drive with an admin scrape).
	Nacks int64 `json:"nacks"`
	Sheds int64 `json:"sheds"`

	// WatermarkLagS is the watermark lag at interval close, in simulated
	// seconds (max event time minus watermark).
	WatermarkLagS float64 `json:"watermark_lag_s"`

	// SLOOK is the interval's verdict against the profile's SLO spec;
	// SLOBreaches names the dimensions that failed.
	SLOOK       bool     `json:"slo_ok"`
	SLOBreaches []string `json:"slo_breaches,omitempty"`
}

// evalSLO scores one interval against the profile's SLO spec.
func evalSLO(slo *pattern.SLOSpec, iv *SimInterval) {
	iv.SLOOK = true
	if slo == nil {
		return
	}
	breach := func(dim string) {
		iv.SLOOK = false
		iv.SLOBreaches = append(iv.SLOBreaches, dim)
	}
	if slo.P99Ms > 0 && float64(iv.P99US)/1e3 > slo.P99Ms {
		breach("p99_latency")
	}
	if slo.MaxLagS > 0 && iv.WatermarkLagS > slo.MaxLagS {
		breach("watermark_lag")
	}
	if (slo.CheckNacks || slo.MaxNacks > 0) && iv.Nacks > slo.MaxNacks {
		breach("nacks")
	}
	if (slo.CheckSheds || slo.MaxSheds > 0) && iv.Sheds > slo.MaxSheds {
		breach("sheds")
	}
}

// WriteFile writes the report as indented JSON via temp file + rename, so
// an interrupted run never leaves a truncated report behind.
func (r *SimReport) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("perf: encoding sim report: %w", err)
	}
	data = append(data, '\n')
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("perf: writing sim report: %w", err)
	}
	return os.Rename(tmp, path)
}

// ReadSimReport loads and version-checks a SIM_*.json report.
func ReadSimReport(path string) (*SimReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("perf: reading sim report: %w", err)
	}
	var r SimReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("perf: parsing sim report %s: %w", path, err)
	}
	if r.SchemaVersion != SimSchemaVersion {
		return nil, fmt.Errorf("perf: sim report %s has schema version %d, this build reads %d",
			path, r.SchemaVersion, SimSchemaVersion)
	}
	if err := r.Profile.Validate(); err != nil {
		return nil, fmt.Errorf("perf: sim report %s: %w", path, err)
	}
	return &r, nil
}
