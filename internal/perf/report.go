package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"
)

// SchemaVersion is the BENCH_*.json report schema version this build
// writes and accepts.
const SchemaVersion = 1

// Report is the on-disk benchmark record (BENCH_<tag>.json): everything a
// later gate run needs to re-execute the same cells and decide whether the
// fresh numbers regressed.
type Report struct {
	SchemaVersion int `json:"schema_version"`
	// Tag names the record ("seed", "nightly", a PR number, ...).
	Tag string `json:"tag"`
	// CreatedAt is the wall-clock completion time of the run.
	CreatedAt time.Time `json:"created_at"`
	// GitSHA is the commit the run measured (best effort; "" if unknown).
	GitSHA string `json:"git_sha,omitempty"`
	// Env fingerprints the machine, toolchain, and calibration score.
	Env Env `json:"env"`
	// Spec is the exact sweep specification that produced Cells.
	Spec Spec `json:"spec"`
	// Cells holds one entry per expanded cell, each with Repeats samples.
	Cells []Cell `json:"cells"`
}

// Env fingerprints where a report was recorded. Gate normalization uses
// CalibrationOpsPerUS to compare reports across machines of different
// speeds; the rest is provenance for humans reading BENCH_*.json.
type Env struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Hostname   string `json:"hostname,omitempty"`
	// CalibrationOpsPerUS is the single-core score of a fixed integer-mix
	// microbenchmark (see Calibrate): hash operations per microsecond.
	CalibrationOpsPerUS float64 `json:"calibration_ops_per_us,omitempty"`
}

// Cell is one measured parameter combination. The identity fields mirror
// the spec expansion (see Spec.Cells); Samples holds one entry per repeat.
type Cell struct {
	ID           string   `json:"id"`
	Sweep        string   `json:"sweep"`
	Engine       string   `json:"engine"`
	Workload     string   `json:"workload"`
	Threads      int      `json:"threads"`
	WindowUS     int64    `json:"window_us"`
	LatenessUS   int64    `json:"lateness_us"`
	ZipfS        float64  `json:"zipf_s"`
	Mode         string   `json:"mode"`
	N            int      `json:"n"`
	Gated        bool     `json:"gated,omitempty"`
	Latency      bool     `json:"latency,omitempty"`
	Paced        bool     `json:"paced,omitempty"`
	Instrumented bool     `json:"instrumented,omitempty"`
	Samples      []Sample `json:"samples"`
}

// Sample is one repeat's measurements.
type Sample struct {
	ThroughputTPS  float64 `json:"throughput_tps"`
	ElapsedNS      int64   `json:"elapsed_ns"`
	Results        int64   `json:"results"`
	Unbalancedness float64 `json:"unbalancedness"`
	// Latency quantiles in nanoseconds; present only on latency cells.
	P50NS  int64 `json:"p50_ns,omitempty"`
	P99NS  int64 `json:"p99_ns,omitempty"`
	P999NS int64 `json:"p999_ns,omitempty"`
	// Effectiveness (Eq. 1); present only on instrumented cells.
	Effectiveness float64 `json:"effectiveness,omitempty"`
}

// Throughputs extracts the cell's throughput samples.
func (c Cell) Throughputs() []float64 {
	out := make([]float64, len(c.Samples))
	for i, s := range c.Samples {
		out[i] = s.ThroughputTPS
	}
	return out
}

// P99s extracts the cell's p99 latency samples in nanoseconds.
func (c Cell) P99s() []float64 {
	out := make([]float64, len(c.Samples))
	for i, s := range c.Samples {
		out[i] = float64(s.P99NS)
	}
	return out
}

// CaptureEnv fingerprints the current process environment, including the
// calibration score (which costs a few tens of milliseconds).
func CaptureEnv() Env {
	host, _ := os.Hostname()
	return Env{
		GoVersion:           runtime.Version(),
		GOOS:                runtime.GOOS,
		GOARCH:              runtime.GOARCH,
		NumCPU:              runtime.NumCPU(),
		GOMAXPROCS:          runtime.GOMAXPROCS(0),
		Hostname:            host,
		CalibrationOpsPerUS: Calibrate(),
	}
}

// Calibrate measures a fixed single-core integer-mix microbenchmark
// (splitmix64 finalizer chain, the mix the engines' key hashing uses) and
// returns operations per microsecond — a machine-speed score recorded in
// every report. The gate scales a baseline recorded on different hardware
// by the ratio of scores, so a committed baseline stays meaningful on a
// differently-sized CI runner. Best of three trials, to shed scheduler
// noise.
func Calibrate() float64 {
	const ops = 1 << 22
	best := 0.0
	for trial := 0; trial < 3; trial++ {
		x := uint64(0x9e3779b97f4a7c15)
		start := time.Now()
		for i := 0; i < ops; i++ {
			x ^= uint64(i)
			x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
			x = (x ^ (x >> 27)) * 0x94d049bb133111eb
			x ^= x >> 31
		}
		elapsed := time.Since(start)
		sink = x // defeat dead-code elimination
		if us := float64(elapsed.Microseconds()); us > 0 {
			if score := ops / us; score > best {
				best = score
			}
		}
	}
	return best
}

var sink uint64

// WriteFile writes the report as indented JSON via a temp file + rename,
// so a crashed run never leaves a truncated baseline behind.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("perf: encoding report: %w", err)
	}
	data = append(data, '\n')
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("perf: writing report: %w", err)
	}
	return os.Rename(tmp, path)
}

// ReadReport loads and validates a BENCH_*.json report.
func ReadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("perf: reading report: %w", err)
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("perf: parsing report %s: %w", path, err)
	}
	if r.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("perf: report %s has schema version %d, this build reads %d", path, r.SchemaVersion, SchemaVersion)
	}
	if err := r.Spec.Validate(); err != nil {
		return nil, fmt.Errorf("perf: report %s: %w", path, err)
	}
	return &r, nil
}
