// Package perf is the benchmark subsystem behind the repository's
// performance-regression gate: declarative sweep specifications over the
// paper's experimental axes (engine × joiner threads × window length ×
// lateness × key skew × emission mode), a runner that measures every cell
// of a sweep with pinned repeats on seeded workloads, a versioned
// BENCH_*.json report schema (environment fingerprint, git SHA, per-cell
// samples), and a statistical gate that compares a fresh run against a
// committed baseline using interquartile overlap plus configurable
// regression thresholds. EXPERIMENTS.md documents the operator workflow.
package perf

import (
	"encoding/json"
	"fmt"
	"os"

	"oij/internal/engine"
	"oij/internal/harness"
	"oij/internal/tuple"
	"oij/internal/workload"
)

// CurrentSpecVersion is the sweep-spec schema version this build writes
// and accepts.
const CurrentSpecVersion = 1

// Sweep is one cross product of experimental axes over a named base
// workload. Empty axis slices mean "the preset's own value" (a single
// point); the cross product of the non-empty axes defines the sweep's
// cells.
type Sweep struct {
	// Name labels the sweep; it prefixes every cell ID.
	Name string `json:"name"`
	// Workload is a workload.Base preset name ("default", "A", ...).
	Workload string `json:"workload"`
	// Engines are harness.Build variant names.
	Engines []string `json:"engines"`
	// Threads is the joiner-count axis (default: one point, 4 joiners).
	Threads []int `json:"threads,omitempty"`
	// WindowUS overrides the window length (Pre bound) in event-time µs.
	WindowUS []int64 `json:"window_us,omitempty"`
	// LatenessUS overrides lateness in µs; the workload's disorder follows
	// it, matching the paper's "lateness represents the degree of
	// disorder".
	LatenessUS []int64 `json:"lateness_us,omitempty"`
	// ZipfS overrides key skew (0 = uniform, >1 = Zipf exponent).
	ZipfS []float64 `json:"zipf_s,omitempty"`
	// Modes are emission modes: "on-arrival" and/or "on-watermark"
	// (default: the preset's serving semantics, on-arrival).
	Modes []string `json:"modes,omitempty"`
	// MeasureLatency stamps base tuples and records p50/p99/p999 per
	// sample. Latency cells are additionally gated on p99 inflation.
	MeasureLatency bool `json:"measure_latency,omitempty"`
	// Paced replays at the workload's arrival rate (only meaningful with
	// MeasureLatency; ignored when the preset is unpaced).
	Paced bool `json:"paced,omitempty"`
	// Instrument enables effectiveness accounting (adds two clock reads
	// per join, so keep it off gated throughput sweeps).
	Instrument bool `json:"instrument,omitempty"`
	// Gate marks this sweep's cells as regression-gated.
	Gate bool `json:"gate,omitempty"`
}

// Spec is a complete, self-describing sweep specification. It is embedded
// verbatim in every report so a gate run can re-execute exactly the
// baseline's cells.
type Spec struct {
	SpecVersion int `json:"spec_version"`
	// Name identifies the spec ("smoke", "seed", "full", or a file's).
	Name string `json:"name"`
	// N is the tuples generated per workload.
	N int `json:"n"`
	// Repeats is the pinned per-cell sample count.
	Repeats int `json:"repeats"`
	// Seed seeds latency reservoir sampling (per-repeat offsets applied).
	Seed int64 `json:"seed,omitempty"`
	// MaxLatencySamples caps per-joiner latency retention (default 4096).
	MaxLatencySamples int `json:"max_latency_samples,omitempty"`
	// Sweeps are expanded in order into the report's cells.
	Sweeps []Sweep `json:"sweeps"`
}

// emitModes maps spec mode strings to engine emission modes.
var emitModes = map[string]engine.EmitMode{
	"on-arrival":   engine.OnArrival,
	"on-watermark": engine.OnWatermark,
}

// Validate reports specification errors.
func (s Spec) Validate() error {
	if s.SpecVersion != CurrentSpecVersion {
		return fmt.Errorf("perf: spec version %d not supported (want %d)", s.SpecVersion, CurrentSpecVersion)
	}
	if s.N <= 0 {
		return fmt.Errorf("perf: spec %s: N must be positive, got %d", s.Name, s.N)
	}
	if s.Repeats <= 0 {
		return fmt.Errorf("perf: spec %s: repeats must be positive, got %d", s.Name, s.Repeats)
	}
	if len(s.Sweeps) == 0 {
		return fmt.Errorf("perf: spec %s: no sweeps", s.Name)
	}
	known := map[string]bool{}
	for _, e := range harness.Engines() {
		known[e] = true
	}
	seen := map[string]bool{}
	for _, sw := range s.Sweeps {
		switch {
		case sw.Name == "":
			return fmt.Errorf("perf: spec %s: sweep with empty name", s.Name)
		case seen[sw.Name]:
			return fmt.Errorf("perf: spec %s: duplicate sweep name %q", s.Name, sw.Name)
		case len(sw.Engines) == 0:
			return fmt.Errorf("perf: sweep %s: no engines", sw.Name)
		}
		seen[sw.Name] = true
		if _, err := workload.Base(sw.Workload, 1); err != nil {
			return fmt.Errorf("perf: sweep %s: %w", sw.Name, err)
		}
		for _, e := range sw.Engines {
			if !known[e] {
				return fmt.Errorf("perf: sweep %s: unknown engine %q (known: %v)", sw.Name, e, harness.Engines())
			}
		}
		for _, t := range sw.Threads {
			if t < 1 {
				return fmt.Errorf("perf: sweep %s: threads must be >= 1, got %d", sw.Name, t)
			}
		}
		for _, m := range sw.Modes {
			if _, ok := emitModes[m]; !ok {
				return fmt.Errorf("perf: sweep %s: unknown mode %q", sw.Name, m)
			}
		}
		for _, w := range sw.WindowUS {
			if w < 1 {
				return fmt.Errorf("perf: sweep %s: window_us must be >= 1, got %d", sw.Name, w)
			}
		}
		for _, l := range sw.LatenessUS {
			if l < 0 {
				return fmt.Errorf("perf: sweep %s: negative lateness_us %d", sw.Name, l)
			}
		}
	}
	return nil
}

// Cells expands the spec into its measurement cells in deterministic
// order, with every axis resolved to concrete values (presets fill the
// axes a sweep leaves empty). Samples are empty; the runner fills them.
func (s Spec) Cells() ([]Cell, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	var cells []Cell
	for _, sw := range s.Sweeps {
		base, err := workload.Base(sw.Workload, s.N)
		if err != nil {
			return nil, err
		}
		threads := sw.Threads
		if len(threads) == 0 {
			threads = []int{4}
		}
		windows := sw.WindowUS
		if len(windows) == 0 {
			windows = []int64{int64(base.Window.Pre)}
		}
		lateness := sw.LatenessUS
		if len(lateness) == 0 {
			lateness = []int64{int64(base.Window.Lateness)}
		}
		zipfs := sw.ZipfS
		if len(zipfs) == 0 {
			zipfs = []float64{base.ZipfS}
		}
		modes := sw.Modes
		if len(modes) == 0 {
			modes = []string{engine.OnArrival.String()}
		}
		for _, eng := range sw.Engines {
			for _, th := range threads {
				for _, win := range windows {
					for _, late := range lateness {
						for _, z := range zipfs {
							for _, mode := range modes {
								c := Cell{
									Sweep:        sw.Name,
									Engine:       eng,
									Workload:     sw.Workload,
									Threads:      th,
									WindowUS:     win,
									LatenessUS:   late,
									ZipfS:        z,
									Mode:         mode,
									N:            s.N,
									Gated:        sw.Gate,
									Latency:      sw.MeasureLatency,
									Paced:        sw.Paced,
									Instrumented: sw.Instrument,
								}
								c.ID = c.id()
								cells = append(cells, c)
							}
						}
					}
				}
			}
		}
	}
	return cells, nil
}

// workloadConfig resolves the cell's concrete workload configuration.
func (c Cell) workloadConfig() (workload.Config, error) {
	wl, err := workload.Base(c.Workload, c.N)
	if err != nil {
		return workload.Config{}, err
	}
	wl.Window.Pre = tuple.Time(c.WindowUS)
	wl.Window.Lateness = tuple.Time(c.LatenessUS)
	// Disorder tracks lateness (the paper's convention) and must never
	// exceed it or results would be inexact.
	wl.Disorder = tuple.Time(c.LatenessUS)
	wl.ZipfS = c.ZipfS
	if !c.Paced {
		wl.ArrivalRate = 0
	}
	return wl, nil
}

// id renders the canonical cell identity: every resolved parameter, so
// baselines and fresh runs match cells by string equality.
func (c Cell) id() string {
	return fmt.Sprintf("%s/%s/wl=%s/t=%d/w=%dus/l=%dus/z=%g/%s",
		c.Sweep, c.Engine, c.Workload, c.Threads, c.WindowUS, c.LatenessUS, c.ZipfS, c.Mode)
}

// ParseSpec decodes and validates a JSON sweep spec.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return Spec{}, fmt.Errorf("perf: parsing spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// LoadSpec reads a JSON sweep spec from disk.
func LoadSpec(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("perf: reading spec: %w", err)
	}
	return ParseSpec(data)
}
