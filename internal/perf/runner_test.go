package perf

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"oij/internal/harness"
)

// tinySpec is sized for test time, not statistical power.
func tinySpec() Spec {
	return Spec{
		SpecVersion: CurrentSpecVersion,
		Name:        "tiny",
		N:           5000,
		Repeats:     2,
		Seed:        1,
		Sweeps: []Sweep{
			{Name: "tput", Workload: "default", Engines: []string{harness.KeyOIJ, harness.ScaleOIJ},
				Threads: []int{2}, Gate: true},
			{Name: "lat", Workload: "default", Engines: []string{harness.ScaleOIJ},
				Threads: []int{2}, MeasureLatency: true, Gate: true},
			{Name: "eff", Workload: "default", Engines: []string{harness.KeyOIJ},
				Threads: []int{2}, Instrument: true},
		},
	}
}

func TestRunSpecEndToEnd(t *testing.T) {
	env := Env{GoVersion: "test", CalibrationOpsPerUS: 1}
	rep, err := RunSpec(tinySpec(), RunOptions{Tag: "t", Env: &env})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 4 {
		t.Fatalf("got %d cells, want 4", len(rep.Cells))
	}
	for _, c := range rep.Cells {
		if len(c.Samples) != 2 {
			t.Fatalf("%s: got %d samples, want 2", c.ID, len(c.Samples))
		}
		for _, s := range c.Samples {
			if s.ThroughputTPS <= 0 || s.ElapsedNS <= 0 || s.Results <= 0 {
				t.Errorf("%s: implausible sample %+v", c.ID, s)
			}
			if c.Latency && s.P99NS <= 0 {
				t.Errorf("%s: latency cell without p99: %+v", c.ID, s)
			}
			if !c.Latency && s.P99NS != 0 {
				t.Errorf("%s: non-latency cell with p99: %+v", c.ID, s)
			}
			if c.Instrumented && (s.Effectiveness <= 0 || s.Effectiveness > 1) {
				t.Errorf("%s: effectiveness %g outside (0,1]", c.ID, s.Effectiveness)
			}
		}
	}

	// The report round-trips through disk, and a self-gate passes.
	path := filepath.Join(t.TempDir(), "BENCH_t.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Cells) != len(rep.Cells) || back.Tag != rep.Tag {
		t.Fatalf("report changed across disk round-trip")
	}
	g := Gate(back, rep, DefaultGateOptions())
	if !g.OK() {
		t.Fatalf("self-gate failed: %+v", g)
	}
}

// TestRunSpecWithProfiler proves a sweep runs to completion with the
// continuous profiler attached and leaves a usable ring behind: at least
// the sweep-start capture round (CPU + heap) and a MANIFEST.json profdiff
// can consume.
func TestRunSpecWithProfiler(t *testing.T) {
	s := tinySpec()
	s.Repeats = 1
	dir := filepath.Join(t.TempDir(), "ring")
	env := Env{GoVersion: "test", CalibrationOpsPerUS: 1}
	rep, err := RunSpec(s, RunOptions{Tag: "p", Env: &env, Profiler: true, ProfileDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 4 {
		t.Fatalf("got %d cells, want 4", len(rep.Cells))
	}
	man, err := os.ReadFile(filepath.Join(dir, "MANIFEST.json"))
	if err != nil {
		t.Fatalf("profiler left no manifest: %v", err)
	}
	var doc struct {
		Entries []struct {
			Kind string `json:"kind"`
			File string `json:"file"`
		} `json:"entries"`
	}
	if err := json.Unmarshal(man, &doc); err != nil {
		t.Fatal(err)
	}
	kinds := map[string]bool{}
	for _, e := range doc.Entries {
		kinds[e.Kind] = true
		if _, err := os.Stat(filepath.Join(dir, e.File)); err != nil {
			t.Errorf("manifest entry without file: %v", err)
		}
	}
	if !kinds["cpu"] || !kinds["heap"] {
		t.Fatalf("ring kinds = %v, want cpu and heap", kinds)
	}
}

func TestRunSpecOverrides(t *testing.T) {
	s := tinySpec()
	s.Sweeps = s.Sweeps[:1]
	rep, err := RunSpec(s, RunOptions{Repeats: 1, N: 2000, Env: &Env{}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Spec.Repeats != 1 || rep.Spec.N != 2000 {
		t.Fatalf("overrides not recorded in report spec: %+v", rep.Spec)
	}
	for _, c := range rep.Cells {
		if len(c.Samples) != 1 || c.N != 2000 {
			t.Fatalf("overrides not applied to cell %+v", c)
		}
	}
}

func TestReadReportRejectsBadSchema(t *testing.T) {
	rep, err := RunSpec(Spec{
		SpecVersion: CurrentSpecVersion, Name: "x", N: 1000, Repeats: 1,
		Sweeps: []Sweep{{Name: "s", Workload: "default", Engines: []string{harness.KeyOIJ}, Threads: []int{1}}},
	}, RunOptions{Env: &Env{}})
	if err != nil {
		t.Fatal(err)
	}
	rep.SchemaVersion = 99
	path := filepath.Join(t.TempDir(), "BENCH_bad.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadReport(path); err == nil {
		t.Fatal("expected schema version mismatch error")
	}
}

func TestCalibrate(t *testing.T) {
	if score := Calibrate(); score <= 0 {
		t.Fatalf("calibration score %g, want > 0", score)
	}
}
