package perf

import (
	"fmt"
	"sort"

	"oij/internal/harness"
)

// Builtin sweep specifications. Three tiers share one shape so their
// numbers stay comparable:
//
//   - "smoke"  — the CI gate: the fewest cells that still cover every
//     engine, the skip-list hot path (lateness sweep) and the dynamic
//     scheduler (skew sweep), sized to finish in well under a minute.
//   - "seed"   — the committed-baseline tier: smoke's axes plus window,
//     emission-mode, latency, and effectiveness sweeps.
//   - "full"   — the nightly tier: the paper's axis ranges (Figs. 10–16)
//     with more repeats.
//
// Cell identities are schema: removing or renaming a gated sweep breaks
// comparison against every baseline recorded from the old shape.
var builtins = map[string]func() Spec{
	"smoke": smokeSpec,
	"seed":  seedSpec,
	"full":  fullSpec,
}

// BuiltinSpec returns a named builtin spec.
func BuiltinSpec(name string) (Spec, error) {
	mk, ok := builtins[name]
	if !ok {
		return Spec{}, fmt.Errorf("perf: unknown builtin spec %q (known: %v)", name, BuiltinSpecNames())
	}
	return mk(), nil
}

// BuiltinSpecNames lists the builtin spec names in sorted order.
func BuiltinSpecNames() []string {
	names := make([]string, 0, len(builtins))
	for name := range builtins {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// allEngines is the engine set the paper's comparative figures cover,
// plus the serial refjoin oracle.
func allEngines() []string {
	return []string{harness.KeyOIJ, harness.ScaleOIJ, harness.SplitJoin, harness.OpenMLDB, harness.RefJoin}
}

// contenders are the two engines whose crossover the paper's sensitivity
// sweeps (lateness, window, skew) track.
func contenders() []string {
	return []string{harness.KeyOIJ, harness.ScaleOIJ}
}

func smokeSpec() Spec {
	return Spec{
		SpecVersion: CurrentSpecVersion,
		Name:        "smoke",
		N:           30_000,
		Repeats:     3,
		Seed:        1,
		Sweeps: []Sweep{
			{Name: "threads", Workload: "default", Engines: allEngines(), Threads: []int{1, 4}, Gate: true},
			{Name: "lateness", Workload: "default", Engines: contenders(), Threads: []int{4},
				LatenessUS: []int64{100, 10_000, 50_000}, Gate: true},
			// Skew is gated for scale-oij only: its dynamic scheduler is
			// what the sweep protects. key-oij under skew is recorded but
			// not gated — its throughput is bimodal across processes
			// (whichever joiner draws the hot key sets the run's mode),
			// so cross-run IQRs are legitimately disjoint.
			{Name: "skew", Workload: "default", Engines: []string{harness.ScaleOIJ}, Threads: []int{4},
				ZipfS: []float64{0, 1.2}, Gate: true},
			{Name: "skew-ref", Workload: "default", Engines: []string{harness.KeyOIJ}, Threads: []int{4},
				ZipfS: []float64{0, 1.2}},
			{Name: "latency", Workload: "default", Engines: []string{harness.ScaleOIJ}, Threads: []int{4},
				MeasureLatency: true, Gate: true},
		},
	}
}

func seedSpec() Spec {
	s := smokeSpec()
	s.Name = "seed"
	// Longer cells and more repeats than smoke: on a small host a ~10 ms
	// cell is scheduler-noise-dominated and 3 repeats under-sample the
	// spread, which makes the IQR guard flaky. ~100+ ms cells x 5 repeats
	// hold the gate's false-positive rate down (measured across repeated
	// self-gates on a 1-CPU container).
	s.N = 400_000
	s.Repeats = 5
	s.Sweeps = append(s.Sweeps,
		Sweep{Name: "window", Workload: "default", Engines: contenders(), Threads: []int{4},
			WindowUS: []int64{100, 1_000, 10_000}, Gate: true},
		Sweep{Name: "modes", Workload: "default", Engines: []string{harness.ScaleOIJ}, Threads: []int{4},
			Modes: []string{"on-arrival", "on-watermark"}, Gate: true},
		Sweep{Name: "latency-key", Workload: "default", Engines: []string{harness.KeyOIJ}, Threads: []int{4},
			MeasureLatency: true, Gate: true},
		Sweep{Name: "effectiveness", Workload: "default", Engines: contenders(), Threads: []int{4},
			LatenessUS: []int64{10_000}, Instrument: true},
	)
	return s
}

func fullSpec() Spec {
	return Spec{
		SpecVersion: CurrentSpecVersion,
		Name:        "full",
		N:           200_000,
		Repeats:     5,
		Seed:        1,
		Sweeps: []Sweep{
			{Name: "threads", Workload: "default", Engines: allEngines(),
				Threads: []int{1, 2, 4, 8, 16}, Gate: true},
			{Name: "lateness", Workload: "default", Engines: contenders(), Threads: []int{16},
				LatenessUS: []int64{100, 1_000, 10_000, 50_000, 100_000}, Gate: true},
			{Name: "window", Workload: "default", Engines: contenders(), Threads: []int{16},
				WindowUS: []int64{100, 1_000, 10_000, 50_000}, Gate: true},
			// As in the seed spec, skew and hot-key rotation gate
			// scale-oij only; key-oij's static partition is bimodal under
			// skew and is recorded ungated.
			{Name: "skew", Workload: "default", Engines: []string{harness.ScaleOIJ}, Threads: []int{16},
				ZipfS: []float64{0, 1.1, 1.5}, Gate: true},
			{Name: "skew-ref", Workload: "default", Engines: []string{harness.KeyOIJ}, Threads: []int{16},
				ZipfS: []float64{0, 1.1, 1.5}},
			{Name: "rotation", Workload: "skewed", Engines: []string{harness.ScaleOIJ}, Threads: []int{16}, Gate: true},
			{Name: "rotation-ref", Workload: "skewed", Engines: []string{harness.KeyOIJ}, Threads: []int{16}},
			{Name: "tableV", Workload: "tableV", Engines: contenders(), Threads: []int{16}, Gate: true},
			{Name: "modes", Workload: "default", Engines: contenders(), Threads: []int{16},
				Modes: []string{"on-arrival", "on-watermark"}, Gate: true},
			{Name: "latency", Workload: "default", Engines: contenders(), Threads: []int{16},
				MeasureLatency: true, Gate: true},
			{Name: "latency-A", Workload: "A", Engines: []string{harness.ScaleOIJ}, Threads: []int{16},
				MeasureLatency: true, Paced: true},
			{Name: "effectiveness", Workload: "default", Engines: contenders(), Threads: []int{16},
				LatenessUS: []int64{100, 10_000, 100_000}, Instrument: true},
		},
	}
}
