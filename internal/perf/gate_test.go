package perf

import (
	"strings"
	"testing"
	"time"
)

// synthReport builds a report whose single gated cell has the given
// throughput samples (tuples/s) and optional p99 samples (ns).
func synthReport(calib float64, tput []float64, p99 []int64) *Report {
	cell := Cell{
		ID:    "threads/key-oij/wl=default/t=4/w=1000us/l=100us/z=0/on-arrival",
		Sweep: "threads", Engine: "key-oij", Workload: "default",
		Threads: 4, WindowUS: 1000, LatenessUS: 100, Mode: "on-arrival",
		N: 1000, Gated: true, Latency: len(p99) > 0,
	}
	for i, v := range tput {
		s := Sample{ThroughputTPS: v, ElapsedNS: int64(time.Millisecond), Results: 1}
		if len(p99) > 0 {
			s.P50NS = p99[i] / 2
			s.P99NS = p99[i]
			s.P999NS = p99[i] * 2
		}
		cell.Samples = append(cell.Samples, s)
	}
	return &Report{
		SchemaVersion: SchemaVersion,
		Tag:           "synth",
		Env:           Env{CalibrationOpsPerUS: calib},
		Spec:          validSpec(),
		Cells:         []Cell{cell},
	}
}

func TestGatePassesOnEqualReports(t *testing.T) {
	base := synthReport(100, []float64{1e6, 1.02e6, 0.98e6}, nil)
	fresh := synthReport(100, []float64{0.99e6, 1.01e6, 1e6}, nil)
	g := Gate(base, fresh, DefaultGateOptions())
	if !g.OK() || g.Regressions != 0 {
		t.Fatalf("expected pass, got %+v", g)
	}
	if len(g.Verdicts) != 1 {
		t.Fatalf("expected 1 verdict, got %d", len(g.Verdicts))
	}
}

func TestGateFailsOnThroughputCollapse(t *testing.T) {
	base := synthReport(100, []float64{1e6, 1.02e6, 0.98e6}, nil)
	fresh := synthReport(100, []float64{0.5e6, 0.51e6, 0.49e6}, nil)
	g := Gate(base, fresh, DefaultGateOptions())
	if g.OK() {
		t.Fatal("expected 50% throughput drop to regress")
	}
	if g.Regressions != 1 || !g.Verdicts[0].Regressed {
		t.Fatalf("unexpected result %+v", g)
	}
	var sb strings.Builder
	g.WriteTable(&sb)
	if !strings.Contains(sb.String(), "REGRESSED") {
		t.Errorf("table does not flag the regression:\n%s", sb.String())
	}
}

// A median drop beyond the threshold is forgiven while the IQRs still
// overlap — the noise guard.
func TestGateIQROverlapRescuesNoisyDrop(t *testing.T) {
	base := synthReport(100, []float64{1.0e6, 1.3e6, 1.6e6}, nil)
	fresh := synthReport(100, []float64{0.8e6, 0.85e6, 1.1e6}, nil)
	g := Gate(base, fresh, DefaultGateOptions())
	if !g.OK() {
		t.Fatalf("overlapping IQRs must not regress: %+v", g.Verdicts[0])
	}
}

func TestGateFailsOnP99Inflation(t *testing.T) {
	base := synthReport(100, []float64{1e6, 1e6, 1e6}, []int64{1000, 1100, 1050})
	fresh := synthReport(100, []float64{1e6, 1e6, 1e6}, []int64{5000, 5100, 5050})
	g := Gate(base, fresh, DefaultGateOptions())
	if g.OK() {
		t.Fatal("expected 5x p99 inflation to regress")
	}
	if len(g.Verdicts[0].Reasons) != 1 || !strings.Contains(g.Verdicts[0].Reasons[0], "p99") {
		t.Fatalf("unexpected reasons %v", g.Verdicts[0].Reasons)
	}
}

// A committed baseline from a machine 2x faster than the fresh runner
// would spuriously fail every cell without normalization; the calibration
// ratio scales the bar.
func TestGateCalibrationNormalization(t *testing.T) {
	base := synthReport(200, []float64{2e6, 2.02e6, 1.98e6}, nil)
	fresh := synthReport(100, []float64{1e6, 1.01e6, 0.99e6}, nil)

	g := Gate(base, fresh, DefaultGateOptions())
	if !g.OK() {
		t.Fatalf("normalized gate should pass on proportionally slower machine: %+v", g.Verdicts[0])
	}
	if g.CalibrationRatio != 0.5 {
		t.Fatalf("calibration ratio = %g, want 0.5", g.CalibrationRatio)
	}

	o := DefaultGateOptions()
	o.Normalize = false
	if g := Gate(base, fresh, o); g.OK() {
		t.Fatal("unnormalized gate should fail on the same pair")
	}
}

func TestGateMissingGatedCellFails(t *testing.T) {
	base := synthReport(100, []float64{1e6}, nil)
	fresh := synthReport(100, []float64{1e6}, nil)
	fresh.Cells[0].ID = "renamed"
	g := Gate(base, fresh, DefaultGateOptions())
	if g.OK() {
		t.Fatal("dropping a gated cell must fail the gate")
	}
	if len(g.MissingCells) != 1 || len(g.NewCells) != 1 {
		t.Fatalf("missing=%v new=%v", g.MissingCells, g.NewCells)
	}
}
