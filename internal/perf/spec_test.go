package perf

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"oij/internal/harness"
)

func validSpec() Spec {
	return Spec{
		SpecVersion: CurrentSpecVersion,
		Name:        "t",
		N:           1000,
		Repeats:     2,
		Sweeps: []Sweep{
			{Name: "s", Workload: "default", Engines: []string{harness.KeyOIJ}},
		},
	}
}

func TestSpecValidate(t *testing.T) {
	if err := validSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name    string
		mutate  func(*Spec)
		wantSub string
	}{
		{"bad version", func(s *Spec) { s.SpecVersion = 99 }, "version"},
		{"zero n", func(s *Spec) { s.N = 0 }, "N must be positive"},
		{"zero repeats", func(s *Spec) { s.Repeats = 0 }, "repeats"},
		{"no sweeps", func(s *Spec) { s.Sweeps = nil }, "no sweeps"},
		{"unknown engine", func(s *Spec) { s.Sweeps[0].Engines = []string{"nope"} }, "unknown engine"},
		{"unknown workload", func(s *Spec) { s.Sweeps[0].Workload = "nope" }, "unknown preset"},
		{"unknown mode", func(s *Spec) { s.Sweeps[0].Modes = []string{"sometimes"} }, "unknown mode"},
		{"bad threads", func(s *Spec) { s.Sweeps[0].Threads = []int{0} }, "threads"},
		{"bad window", func(s *Spec) { s.Sweeps[0].WindowUS = []int64{0} }, "window_us"},
		{"bad lateness", func(s *Spec) { s.Sweeps[0].LatenessUS = []int64{-1} }, "lateness_us"},
		{"empty sweep name", func(s *Spec) { s.Sweeps[0].Name = "" }, "empty name"},
		{"duplicate sweep", func(s *Spec) { s.Sweeps = append(s.Sweeps, s.Sweeps[0]) }, "duplicate"},
	}
	for _, tc := range cases {
		s := validSpec()
		tc.mutate(&s)
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: got error %v, want substring %q", tc.name, err, tc.wantSub)
		}
	}
}

func TestSpecCellsExpansion(t *testing.T) {
	s := validSpec()
	s.Sweeps = []Sweep{{
		Name:       "x",
		Workload:   "default",
		Engines:    []string{harness.KeyOIJ, harness.ScaleOIJ},
		Threads:    []int{1, 4},
		LatenessUS: []int64{100, 1000, 10000},
		Gate:       true,
	}}
	cells, err := s.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 2 * 3; len(cells) != want {
		t.Fatalf("got %d cells, want %d", len(cells), want)
	}
	ids := map[string]bool{}
	for _, c := range cells {
		if ids[c.ID] {
			t.Fatalf("duplicate cell ID %s", c.ID)
		}
		ids[c.ID] = true
		if !c.Gated {
			t.Errorf("%s: expected gated", c.ID)
		}
		// Unset axes resolve to the preset's concrete values, so the ID
		// pins every parameter.
		if c.WindowUS != 1000 { // DefaultSynthetic's |w|
			t.Errorf("%s: window not resolved from preset, got %d", c.ID, c.WindowUS)
		}
		wl, err := c.workloadConfig()
		if err != nil {
			t.Fatal(err)
		}
		if int64(wl.Window.Lateness) != c.LatenessUS || int64(wl.Disorder) != c.LatenessUS {
			t.Errorf("%s: lateness override not applied (lateness=%d disorder=%d)",
				c.ID, wl.Window.Lateness, wl.Disorder)
		}
	}
	// Expansion is deterministic.
	again, err := s.Cells()
	if err != nil {
		t.Fatal(err)
	}
	for i := range cells {
		if cells[i].ID != again[i].ID {
			t.Fatalf("expansion order unstable at %d: %s vs %s", i, cells[i].ID, again[i].ID)
		}
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	for _, name := range BuiltinSpecNames() {
		s, err := BuiltinSpec(name)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		back, err := ParseSpec(data)
		if err != nil {
			t.Fatalf("%s: round-trip parse: %v", name, err)
		}
		if !reflect.DeepEqual(s, back) {
			t.Errorf("%s: spec changed across JSON round-trip:\n%+v\n%+v", name, s, back)
		}
	}
}

func TestBuiltinSpecsValidAndGated(t *testing.T) {
	for _, name := range BuiltinSpecNames() {
		s, err := BuiltinSpec(name)
		if err != nil {
			t.Fatal(err)
		}
		cells, err := s.Cells()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		gated := 0
		for _, c := range cells {
			if c.Gated {
				gated++
			}
		}
		if gated == 0 {
			t.Errorf("builtin spec %s gates no cells", name)
		}
	}
	if _, err := BuiltinSpec("nope"); err == nil {
		t.Error("expected error for unknown builtin spec")
	}
}
