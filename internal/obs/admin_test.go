package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestAdminEndpoints(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("oij_demo_total", "demo")
	c.Add(11)
	type status struct {
		Uptime float64 `json:"uptime"`
	}
	a, err := ServeAdmin("127.0.0.1:0", reg, func() any { return status{Uptime: 1.25} })
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	base := fmt.Sprintf("http://%s", a.Addr())

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK || !strings.Contains(body, "oij_demo_total 11") {
		t.Fatalf("metrics: code %d body %q", code, body)
	}

	code, body = get(t, base+"/statusz")
	if code != http.StatusOK {
		t.Fatalf("statusz code %d", code)
	}
	var st status
	if err := json.Unmarshal([]byte(body), &st); err != nil || st.Uptime != 1.25 {
		t.Fatalf("statusz body %q err %v", body, err)
	}

	code, body = get(t, base+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index: code %d", code)
	}
}

func TestAdminNoStatus(t *testing.T) {
	a, err := ServeAdmin("127.0.0.1:0", NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	code, _ := get(t, fmt.Sprintf("http://%s/statusz", a.Addr()))
	if code != http.StatusNotFound {
		t.Fatalf("statusz without callback: code %d, want 404", code)
	}
}
