package obs

import "testing"

// The uniform case is the sketch's worst case: every observation misses a
// full sketch and takes the evict path. This is the per-tuple cost the
// telemetry perf gate (oijbench gate -telemetry) holds against the
// regression thresholds, so it must stay a couple of dozen nanoseconds.
func BenchmarkTopKObserveUniform(b *testing.B) {
	t := NewTopK(16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t.Observe(uint64(i) * 0x9e3779b97f4a7c15)
	}
}

// The hot case is a skewed stream where most observations hit a resident
// key — the path a real hot-key incident exercises.
func BenchmarkTopKObserveHot(b *testing.B) {
	t := NewTopK(16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t.Observe(uint64(i & 7))
	}
}

// The full serving-path shape: routing hash plus shard dispatch plus the
// sketch update, as the ingest loop pays it per tuple.
func BenchmarkHotKeysObserve1Shard(b *testing.B) {
	h := NewHotKeys(1, 16, func(k uint64) uint64 {
		k ^= k >> 30
		k *= 0xbf58476d1ce4e5b9
		k ^= k >> 27
		return k
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i) * 0x9e3779b97f4a7c15)
	}
}
