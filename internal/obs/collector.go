// Collector turns a Registry into a fixed series vector for the timeline:
// counters become per-second rates, gauges pass through, multi-shard
// families contribute their hottest shard, and histograms yield
// interval quantiles — the p50/p99 of only the samples recorded since the
// previous tick, computed from bucket-count deltas, so a latency
// regression shows up in the next slot instead of being averaged into a
// lifetime distribution.
package obs

import (
	"time"
)

// Series-name suffixes the collector derives from instrument kinds.
const (
	SuffixRate = ":rate" // counters (and histogram sample counts): per-second delta
	SuffixMax  = ":max"  // multi-shard gauge families: hottest shard
	SuffixP50  = ":p50"  // histograms: interval median, in the family's output unit
	SuffixP99  = ":p99"  // histograms: interval p99, in the family's output unit
)

// collectorSource reads one series value per tick.
type collectorSource func(elapsed time.Duration) float64

// Collector samples every instrument registered at construction time into
// a stable, ordered series vector. Collect must be called from a single
// goroutine (the epoch sampler): rate and interval-quantile state is
// writer-private.
type Collector struct {
	names   []string
	sources []collectorSource
}

// NewCollector snapshots the registry's instrument set. Instruments
// registered afterwards are not collected — the server registers
// everything before building its collector.
func NewCollector(r *Registry) *Collector {
	r.mu.Lock()
	counters := append([]*CounterVec(nil), r.counters...)
	gauges := append([]*GaugeVec(nil), r.gauges...)
	gfns := append([]*gaugeFunc(nil), r.gfns...)
	gvfns := append([]*gaugeVecFunc(nil), r.gvfns...)
	hists := append([]*HistogramVec(nil), r.hists...)
	r.mu.Unlock()

	c := &Collector{}
	add := func(name string, src collectorSource) {
		c.names = append(c.names, name)
		c.sources = append(c.sources, src)
	}
	for _, v := range counters {
		v := v
		prev := v.Total()
		add(v.name+SuffixRate, func(elapsed time.Duration) float64 {
			cur := v.Total()
			d := cur - prev
			prev = cur
			return rate(float64(d), elapsed)
		})
	}
	for _, v := range gauges {
		v := v
		if len(v.shards) == 1 {
			add(v.name, func(time.Duration) float64 { return v.shards[0].Load() })
			continue
		}
		add(v.name+SuffixMax, func(time.Duration) float64 { return maxOf(v.Values()) })
	}
	for _, g := range gfns {
		g := g
		add(g.name, func(time.Duration) float64 { return g.fn() })
	}
	for _, g := range gvfns {
		g := g
		add(g.name+SuffixMax, func(time.Duration) float64 { return maxOf(g.fn()) })
	}
	for _, v := range hists {
		v := v
		// Interval quantiles share one delta snapshot per tick: the first
		// of the three sources computes it, the others read it.
		var prev, delta HistSnapshot
		tick := func() {
			cur := v.Snapshot()
			delta = HistSnapshot{N: cur.N - prev.N, Sum: cur.Sum - prev.Sum, Max: cur.Max}
			for i := range cur.Counts {
				delta.Counts[i] = cur.Counts[i] - prev.Counts[i]
			}
			prev = *cur
		}
		add(v.name+SuffixP50, func(time.Duration) float64 {
			tick()
			return float64(delta.Quantile(0.5)) / v.scale
		})
		add(v.name+SuffixP99, func(time.Duration) float64 {
			return float64(delta.Quantile(0.99)) / v.scale
		})
		add(v.name+SuffixRate, func(elapsed time.Duration) float64 {
			return rate(float64(delta.N), elapsed)
		})
	}
	return c
}

// Names returns the collected series names, aligned with Collect results.
func (c *Collector) Names() []string { return append([]string(nil), c.names...) }

// Collect samples every series. elapsed is the wall time since the
// previous Collect (rates divide by it); the returned slice is reused
// across calls — the timeline copies what it keeps.
func (c *Collector) Collect(elapsed time.Duration, out []float64) []float64 {
	if cap(out) < len(c.sources) {
		out = make([]float64, len(c.sources))
	}
	out = out[:len(c.sources)]
	for i, src := range c.sources {
		out[i] = src(elapsed)
	}
	return out
}

func rate(delta float64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	r := delta / elapsed.Seconds()
	if r < 0 {
		return 0 // counter reset (tests swap registries); clamp, don't plot negative rates
	}
	return r
}

func maxOf(vs []float64) float64 {
	var m float64
	for i, v := range vs {
		if i == 0 || v > m {
			m = v
		}
	}
	return m
}
