// Package obs is the live observability layer: lock-free per-joiner
// instruments (padded atomic counters and gauges, streaming histograms), a
// registry that snapshots them without stopping joiners, and an admin HTTP
// server exposing Prometheus text metrics, a JSON statusz, and pprof.
//
// The hot-path contract mirrors the engines' SWMR discipline: every
// instrument is sharded per joiner, exactly one goroutine writes a shard,
// and the scrape path merges shard snapshots — recording is a shard-local
// atomic write, never a lock, so instrumentation cannot perturb the
// throughput the paper measures.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

const cacheLine = 64

// Counter is a monotonically increasing counter on its own cache line, so
// adjacent shards never false-share.
type Counter struct {
	v atomic.Int64
	_ [cacheLine - 8]byte
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a settable float64 value on its own cache line.
type Gauge struct {
	bits atomic.Uint64
	_    [cacheLine - 8]byte
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Load returns the current value.
func (g *Gauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }

// CounterVec is a named family of per-shard counters.
type CounterVec struct {
	name, help string
	shards     []Counter
}

// Shard returns shard i; only that shard's owning goroutine should write
// it, though writes are atomic so violating that only costs cache traffic.
func (v *CounterVec) Shard(i int) *Counter { return &v.shards[i] }

// Total sums all shards.
func (v *CounterVec) Total() int64 {
	var n int64
	for i := range v.shards {
		n += v.shards[i].Load()
	}
	return n
}

// Values returns the per-shard values.
func (v *CounterVec) Values() []int64 {
	out := make([]int64, len(v.shards))
	for i := range v.shards {
		out[i] = v.shards[i].Load()
	}
	return out
}

// GaugeVec is a named family of per-shard gauges.
type GaugeVec struct {
	name, help string
	shards     []Gauge
}

// Shard returns gauge i.
func (v *GaugeVec) Shard(i int) *Gauge { return &v.shards[i] }

// Values returns the per-shard values.
func (v *GaugeVec) Values() []float64 {
	out := make([]float64, len(v.shards))
	for i := range v.shards {
		out[i] = v.shards[i].Load()
	}
	return out
}

// HistogramVec is a named family of per-shard streaming histograms.
// Values are recorded in the given unit and rendered to Prometheus scaled
// by 1/scale (e.g. record nanoseconds, scale 1e9, render seconds).
type HistogramVec struct {
	name, help string
	scale      float64
	quantiles  []float64
	shards     []Histogram
}

// Shard returns histogram i (single writer per shard).
func (v *HistogramVec) Shard(i int) *Histogram { return &v.shards[i] }

// Snapshot merges every shard into one point-in-time view.
func (v *HistogramVec) Snapshot() *HistSnapshot {
	s := &HistSnapshot{}
	for i := range v.shards {
		s.Merge(&v.shards[i])
	}
	return s
}

// infoMetric is the Prometheus info idiom: a constant gauge of 1 whose
// labels carry build/identity strings (git revision, Go version), so
// scrape artifacts are attributable to the exact binary that produced them.
type infoMetric struct {
	name, help string
	labels     string // pre-rendered {k="v",...} — constant, so escaped once
}

// gaugeFunc reads its value at scrape time — for state that already lives
// in engine atomics (queue depths, watermarks) and needs no second copy.
type gaugeFunc struct {
	name, help string
	fn         func() float64
}

// gaugeVecFunc is the per-shard variant of gaugeFunc.
type gaugeVecFunc struct {
	name, help string
	fn         func() []float64
}

// Registry holds the instrument families of one process. Registration
// takes a lock; recording and scraping never do (scrapes read atomics).
type Registry struct {
	mu       sync.Mutex
	counters []*CounterVec
	gauges   []*GaugeVec
	gfns     []*gaugeFunc
	gvfns    []*gaugeVecFunc
	hists    []*HistogramVec
	infos    []*infoMetric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// DefaultQuantiles are the summary quantiles rendered for histograms —
// the grid the paper's CDF figures read off (§III-B).
var DefaultQuantiles = []float64{0.5, 0.9, 0.99, 0.999}

// NewCounterVec registers a counter family with the given shard count.
func (r *Registry) NewCounterVec(name, help string, shards int) *CounterVec {
	v := &CounterVec{name: name, help: help, shards: make([]Counter, shards)}
	r.mu.Lock()
	r.counters = append(r.counters, v)
	r.mu.Unlock()
	return v
}

// NewCounter registers a single-shard counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	return r.NewCounterVec(name, help, 1).Shard(0)
}

// NewGaugeVec registers a gauge family with the given shard count.
func (r *Registry) NewGaugeVec(name, help string, shards int) *GaugeVec {
	v := &GaugeVec{name: name, help: help, shards: make([]Gauge, shards)}
	r.mu.Lock()
	r.gauges = append(r.gauges, v)
	r.mu.Unlock()
	return v
}

// NewGaugeFunc registers a gauge evaluated at scrape time. fn must be safe
// to call from any goroutine.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	r.mu.Lock()
	r.gfns = append(r.gfns, &gaugeFunc{name, help, fn})
	r.mu.Unlock()
}

// NewGaugeVecFunc registers a per-shard gauge family evaluated at scrape
// time; fn returns one value per shard and must be safe from any goroutine.
func (r *Registry) NewGaugeVecFunc(name, help string, fn func() []float64) {
	r.mu.Lock()
	r.gvfns = append(r.gvfns, &gaugeVecFunc{name, help, fn})
	r.mu.Unlock()
}

// NewInfo registers an info metric: a constant 1 carrying identity labels
// (the Prometheus <name>_info idiom). Label values are escaped on output.
func (r *Registry) NewInfo(name, help string, labels [][2]string) {
	r.mu.Lock()
	r.infos = append(r.infos, &infoMetric{name: name, help: help, labels: renderLabels(labels)})
	r.mu.Unlock()
}

// NewHistogramVec registers a histogram family. scale divides recorded
// values on output (0 means 1); quantiles nil means DefaultQuantiles.
// Quantiles are sorted once here so the scrape path never re-sorts.
func (r *Registry) NewHistogramVec(name, help string, shards int, scale float64, quantiles []float64) *HistogramVec {
	if scale == 0 {
		scale = 1
	}
	if quantiles == nil {
		quantiles = DefaultQuantiles
	}
	qs := append([]float64(nil), quantiles...)
	sort.Float64s(qs)
	v := &HistogramVec{name: name, help: help, scale: scale, quantiles: qs, shards: make([]Histogram, shards)}
	r.mu.Lock()
	r.hists = append(r.hists, v)
	r.mu.Unlock()
	return v
}

// scrapeBuf is the reusable per-scrape working set: the output buffer and
// a histogram merge scratch, pooled so a scrape costs no steady-state
// allocations beyond what gauge-func callbacks themselves allocate (see
// BenchmarkScrape for the measured allocs/op).
type scrapeBuf struct {
	b    []byte
	hist HistSnapshot
}

var scrapePool = sync.Pool{New: func() any { return &scrapeBuf{b: make([]byte, 0, 4096)} }}

// WritePrometheus renders every registered instrument in the Prometheus
// text exposition format (version 0.0.4). Multi-shard families get a
// {joiner="i"} label per shard; histograms render as summaries. The
// encoder builds the whole document in a pooled buffer and writes it once
// — one syscall per scrape, no per-line formatting allocations. The
// registry lock is held while encoding; registration is startup-only, so
// this never contends with anything but another scrape.
func (r *Registry) WritePrometheus(w io.Writer) error {
	sb := scrapePool.Get().(*scrapeBuf)
	b := sb.b[:0]

	r.mu.Lock()
	for _, m := range r.infos {
		b = appendHeader(b, m.name, m.help, "gauge")
		b = append(b, m.name...)
		b = append(b, m.labels...)
		b = append(b, " 1\n"...)
	}
	for _, v := range r.counters {
		b = appendHeader(b, v.name, v.help, "counter")
		if len(v.shards) == 1 {
			b = append(b, v.name...)
			b = append(b, ' ')
			b = strconv.AppendInt(b, v.shards[0].Load(), 10)
			b = append(b, '\n')
			continue
		}
		for i := range v.shards {
			b = appendShardLabel(b, v.name, i)
			b = strconv.AppendInt(b, v.shards[i].Load(), 10)
			b = append(b, '\n')
		}
	}
	for _, v := range r.gauges {
		b = appendHeader(b, v.name, v.help, "gauge")
		if len(v.shards) == 1 {
			b = append(b, v.name...)
			b = append(b, ' ')
			b = appendFloat(b, v.shards[0].Load())
			b = append(b, '\n')
			continue
		}
		for i := range v.shards {
			b = appendShardLabel(b, v.name, i)
			b = appendFloat(b, v.shards[i].Load())
			b = append(b, '\n')
		}
	}
	for _, g := range r.gfns {
		b = appendHeader(b, g.name, g.help, "gauge")
		b = append(b, g.name...)
		b = append(b, ' ')
		b = appendFloat(b, g.fn())
		b = append(b, '\n')
	}
	for _, g := range r.gvfns {
		b = appendHeader(b, g.name, g.help, "gauge")
		for i, val := range g.fn() {
			b = appendShardLabel(b, g.name, i)
			b = appendFloat(b, val)
			b = append(b, '\n')
		}
	}
	for _, v := range r.hists {
		b = appendHeader(b, v.name, v.help, "summary")
		s := &sb.hist
		*s = HistSnapshot{}
		for i := range v.shards {
			s.Merge(&v.shards[i])
		}
		for _, q := range v.quantiles {
			b = append(b, v.name...)
			b = append(b, `{quantile="`...)
			b = appendFloat(b, q)
			b = append(b, `"} `...)
			b = appendFloat(b, float64(s.Quantile(q))/v.scale)
			b = append(b, '\n')
		}
		b = append(b, v.name...)
		b = append(b, "_sum "...)
		b = appendFloat(b, float64(s.Sum)/v.scale)
		b = append(b, '\n')
		b = append(b, v.name...)
		b = append(b, "_count "...)
		b = strconv.AppendInt(b, s.N, 10)
		b = append(b, '\n')
	}
	r.mu.Unlock()

	_, err := w.Write(b)
	sb.b = b
	scrapePool.Put(sb)
	return err
}

// appendFloat renders a float exactly as fmt's %g (shortest unique
// representation) without the fmt allocation.
func appendFloat(b []byte, v float64) []byte {
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// appendShardLabel appends `name{joiner="i"} `.
func appendShardLabel(b []byte, name string, i int) []byte {
	b = append(b, name...)
	b = append(b, `{joiner="`...)
	b = strconv.AppendInt(b, int64(i), 10)
	b = append(b, `"} `...)
	return b
}

func appendHeader(b []byte, name, help, typ string) []byte {
	if help != "" {
		b = append(b, "# HELP "...)
		b = append(b, name...)
		b = append(b, ' ')
		b = append(b, help...)
		b = append(b, '\n')
	}
	b = append(b, "# TYPE "...)
	b = append(b, name...)
	b = append(b, ' ')
	b = append(b, typ...)
	b = append(b, '\n')
	return b
}

// renderLabels formats a label set as {k="v",...}, escaping values per the
// exposition format ("" for an empty set).
func renderLabels(labels [][2]string) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, kv := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		// %q escapes backslash, quote, and newline exactly as the
		// exposition format requires.
		fmt.Fprintf(&b, "%s=%q", kv[0], kv[1])
	}
	b.WriteByte('}')
	return b.String()
}
