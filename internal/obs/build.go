package obs

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// Build reports the running binary's identity: the VCS revision the module
// was built from ("unknown" outside a stamped build, "-dirty" appended when
// the tree was modified), the Go toolchain version, and GOMAXPROCS. It
// feeds the oij_build_info metric and the /statusz build section, so BENCH
// reports and trace dumps are attributable to an exact build.
func Build() (revision, goVersion string, gomaxprocs int) {
	buildOnce.Do(func() {
		buildRev = "unknown"
		if bi, ok := debug.ReadBuildInfo(); ok {
			var rev, dirty string
			for _, s := range bi.Settings {
				switch s.Key {
				case "vcs.revision":
					rev = s.Value
				case "vcs.modified":
					if s.Value == "true" {
						dirty = "-dirty"
					}
				}
			}
			if rev != "" {
				if len(rev) > 12 {
					rev = rev[:12]
				}
				buildRev = rev + dirty
			}
		}
	})
	return buildRev, runtime.Version(), runtime.GOMAXPROCS(0)
}

var (
	buildOnce sync.Once
	buildRev  string
)
