// SpaceSaving top-K sketch (Metwally, Agrawal, El Abbadi: "Efficient
// computation of frequent and top-k elements in data streams"): fixed
// memory, one O(log k) min-heap fix-up per observation, and a per-entry
// overestimation bound. The serving path shards one sketch per joiner —
// keys are routed by the same hash the engines partition on — so the
// shards' key spaces are disjoint and the merged view is exact about
// which shard a hot key burdens.
//
// Error bound: an entry's true count f satisfies
//
//	count - err <= f <= count
//
// and any key with true frequency above Total/k is guaranteed to be
// resident in a k-slot sketch (the classic SpaceSaving guarantee), so the
// merged top-K can miss a key only if its stream share is below 1/k per
// shard.
package obs

import (
	"sort"
	"sync"
)

// TopKEntry is one key's row in a sketch snapshot. Count overestimates the
// true frequency by at most Err.
type TopKEntry struct {
	Key   uint64 `json:"key"`
	Count uint64 `json:"count"`
	Err   uint64 `json:"err"`
}

// TopKSnapshot is a point-in-time copy of a sketch (or a merge of several),
// sorted by count descending, ties broken by key ascending so equal inputs
// always render identically.
type TopKSnapshot struct {
	K       int         `json:"k"`
	Total   uint64      `json:"total"`
	Entries []TopKEntry `json:"entries"`
}

// scanLimit is the largest k for which key lookup is a linear scan of a
// packed key array instead of a map. A miss-heavy stream (uniform keys at
// a full sketch) pays the lookup on every tuple, and at sketch sizes that
// fit in a few cache lines a branch-predictable scan is several times
// cheaper than Go map hash+probe+delete+insert — the difference between
// the telemetry gate passing and failing on the fastest single-threaded
// cell.
const scanLimit = 64

// TopK is a SpaceSaving sketch over uint64 keys. Observe is guarded by a
// mutex: the only contention is a scrape's brief snapshot copy (k entries),
// so the uncontended fast path is one lock word plus a key lookup and the
// heap fix-up — cheap enough that the perf regression gate holds it inside
// the noise floor (see oijbench gate -telemetry).
type TopK struct {
	mu      sync.Mutex
	k       int
	total   uint64
	entries []TopKEntry    // min-heap on Count; entries[0] is the victim
	keys    []uint64       // keys[i] == entries[i].Key, packed for scanning
	idx     map[uint64]int // key -> heap position; nil when k <= scanLimit
}

// NewTopK builds a sketch retaining k keys (minimum 1).
func NewTopK(k int) *TopK {
	if k < 1 {
		k = 1
	}
	t := &TopK{k: k, entries: make([]TopKEntry, 0, k), keys: make([]uint64, 0, k)}
	if k > scanLimit {
		t.idx = make(map[uint64]int, k)
	}
	return t
}

// find returns key's heap position, or -1.
func (t *TopK) find(key uint64) int {
	if t.idx != nil {
		if i, ok := t.idx[key]; ok {
			return i
		}
		return -1
	}
	for i, k := range t.keys {
		if k == key {
			return i
		}
	}
	return -1
}

// Observe records one occurrence of key.
func (t *TopK) Observe(key uint64) {
	t.mu.Lock()
	t.total++
	if i := t.find(key); i >= 0 {
		t.entries[i].Count++
		t.siftDown(i)
	} else if len(t.entries) < t.k {
		t.entries = append(t.entries, TopKEntry{Key: key, Count: 1})
		t.keys = append(t.keys, key)
		if t.idx != nil {
			t.idx[key] = len(t.entries) - 1
		}
		t.siftUp(len(t.entries) - 1)
	} else {
		// Evict the minimum: the newcomer inherits its count as error —
		// the SpaceSaving replacement that keeps every resident count an
		// upper bound on the true frequency.
		victim := t.entries[0]
		if t.idx != nil {
			delete(t.idx, victim.Key)
			t.idx[key] = 0
		}
		t.entries[0] = TopKEntry{Key: key, Count: victim.Count + 1, Err: victim.Count}
		t.keys[0] = key
		t.siftDown(0)
	}
	t.mu.Unlock()
}

// Total returns how many observations the sketch has absorbed.
func (t *TopK) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Snapshot copies the sketch, sorted hottest-first (count desc, key asc).
func (t *TopK) Snapshot() TopKSnapshot {
	t.mu.Lock()
	s := TopKSnapshot{K: t.k, Total: t.total, Entries: append([]TopKEntry(nil), t.entries...)}
	t.mu.Unlock()
	sortTopK(s.Entries)
	return s
}

func sortTopK(es []TopKEntry) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].Count != es[j].Count {
			return es[i].Count > es[j].Count
		}
		return es[i].Key < es[j].Key
	})
}

func (t *TopK) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if t.entries[p].Count <= t.entries[i].Count {
			return
		}
		t.swap(p, i)
		i = p
	}
}

func (t *TopK) siftDown(i int) {
	n := len(t.entries)
	for {
		min, l, r := i, 2*i+1, 2*i+2
		if l < n && t.entries[l].Count < t.entries[min].Count {
			min = l
		}
		if r < n && t.entries[r].Count < t.entries[min].Count {
			min = r
		}
		if min == i {
			return
		}
		t.swap(min, i)
		i = min
	}
}

func (t *TopK) swap(i, j int) {
	t.entries[i], t.entries[j] = t.entries[j], t.entries[i]
	t.keys[i], t.keys[j] = t.keys[j], t.keys[i]
	if t.idx != nil {
		t.idx[t.entries[i].Key] = i
		t.idx[t.entries[j].Key] = j
	}
}

// MergeTopK folds shard snapshots into one k-slot view. Counts and error
// bounds of keys appearing in several shards are summed (for hash-disjoint
// shards this never happens and the merge is exact); the result is sorted
// count-desc/key-asc and truncated, so merging the same snapshots in any
// order yields the same document — the determinism the analytics tests
// pin down.
func MergeTopK(k int, snaps ...TopKSnapshot) TopKSnapshot {
	if k < 1 {
		k = 1
	}
	merged := map[uint64]TopKEntry{}
	out := TopKSnapshot{K: k}
	for _, s := range snaps {
		out.Total += s.Total
		for _, e := range s.Entries {
			m := merged[e.Key]
			m.Key = e.Key
			m.Count += e.Count
			m.Err += e.Err
			merged[e.Key] = m
		}
	}
	out.Entries = make([]TopKEntry, 0, len(merged))
	for _, e := range merged {
		out.Entries = append(out.Entries, e)
	}
	sortTopK(out.Entries)
	if len(out.Entries) > k {
		out.Entries = out.Entries[:k]
	}
	return out
}

// HotKeys is a per-joiner-sharded SpaceSaving tracker for one stream: keys
// are routed to shards by the supplied hash mod shard count — the same
// partition the engines use to assign keys to joiners — so each shard's
// top keys are exactly the keys burdening that joiner.
type HotKeys struct {
	hash   func(uint64) uint64
	shards []*TopK
}

// NewHotKeys builds a tracker with one k-slot sketch per shard. hash nil
// means identity (tests); shards < 1 clamps to 1.
func NewHotKeys(shards, k int, hash func(uint64) uint64) *HotKeys {
	if shards < 1 {
		shards = 1
	}
	if hash == nil {
		hash = func(k uint64) uint64 { return k }
	}
	h := &HotKeys{hash: hash, shards: make([]*TopK, shards)}
	for i := range h.shards {
		h.shards[i] = NewTopK(k)
	}
	return h
}

// Observe records one key occurrence in its owning shard. The single-shard
// layout (a one-joiner engine) skips the routing hash entirely.
func (h *HotKeys) Observe(key uint64) {
	if len(h.shards) == 1 {
		h.shards[0].Observe(key)
		return
	}
	h.shards[h.hash(key)%uint64(len(h.shards))].Observe(key)
}

// Shards returns the shard count.
func (h *HotKeys) Shards() int { return len(h.shards) }

// ShardSnapshot copies shard i.
func (h *HotKeys) ShardSnapshot(i int) TopKSnapshot { return h.shards[i].Snapshot() }

// Merged returns the cross-shard top-k view.
func (h *HotKeys) Merged(k int) TopKSnapshot {
	snaps := make([]TopKSnapshot, len(h.shards))
	for i, s := range h.shards {
		snaps[i] = s.Snapshot()
	}
	return MergeTopK(k, snaps...)
}

// Total returns observations across all shards.
func (h *HotKeys) Total() uint64 {
	var n uint64
	for _, s := range h.shards {
		n += s.Total()
	}
	return n
}

// TopShare returns the merged stream share of the hottest key and of the
// full top-k residency — the skew gauges the timeline records so a key
// going hot is visible as a rising curve, not just a point-in-time list.
func (h *HotKeys) TopShare(k int) (top1, topK float64) {
	m := h.Merged(k)
	if m.Total == 0 {
		return 0, 0
	}
	var sum uint64
	for _, e := range m.Entries {
		sum += e.Count
	}
	if len(m.Entries) > 0 {
		top1 = float64(m.Entries[0].Count) / float64(m.Total)
	}
	topK = float64(sum) / float64(m.Total)
	if topK > 1 {
		topK = 1
	}
	return top1, topK
}
