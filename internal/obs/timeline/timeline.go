// Package timeline is a fixed-memory, multi-resolution time-series ring:
// every registered series is recorded once per epoch tick and retained at
// several downsampled resolutions (by default 1s slots for 5 minutes, 10s
// slots for an hour, 1m slots for a day). All storage is allocated at
// construction — a long-running daemon's history cost is a constant a few
// megabytes, never a growing log.
//
// Layout: each tier is a ring of slots; a slot covers one aligned step
// (bucket = unix_seconds / step_seconds) and accumulates, per series, the
// sum, max, and sample count of every tick that landed in that step. A
// 1s-tier slot therefore holds one tick verbatim (avg == the tick), while
// a 1m-tier slot folds sixty. Gaps are first-class: a stalled sampler
// advances the ring by at most one slot when it resumes, so missing
// buckets stay missing instead of being interpolated — a query sees the
// stall as absent points, exactly what an operator debugging it needs.
package timeline

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// TierSpec declares one retention tier: slot width and slot count.
type TierSpec struct {
	Step  time.Duration
	Slots int
}

// Retention returns the tier's covered span.
func (t TierSpec) Retention() time.Duration { return t.Step * time.Duration(t.Slots) }

// Name renders the tier's resolution ("1s", "10s", "1m").
func (t TierSpec) Name() string {
	if t.Step >= time.Minute && t.Step%time.Minute == 0 {
		return fmt.Sprintf("%dm", t.Step/time.Minute)
	}
	return fmt.Sprintf("%ds", t.Step/time.Second)
}

// DefaultTiers is the retention ladder the issue's operators read: the
// last 5 minutes at full epoch resolution, the last hour at 10s, the last
// day at 1m.
func DefaultTiers() []TierSpec {
	return []TierSpec{
		{Step: time.Second, Slots: 300},
		{Step: 10 * time.Second, Slots: 360},
		{Step: time.Minute, Slots: 1440},
	}
}

// slot is one tier ring entry: a bucket stamp plus per-series aggregates.
// bucket < 0 marks a never-written slot.
type slot struct {
	bucket int64
	sum    []float64
	max    []float64
	n      []uint32
}

func (s *slot) reset(bucket int64) {
	s.bucket = bucket
	for i := range s.sum {
		s.sum[i], s.max[i], s.n[i] = 0, 0, 0
	}
}

// tier is one resolution ring.
type tier struct {
	spec TierSpec
	head int // ring position of the newest slot
	ring []slot
}

// Timeline records a fixed set of named series into every tier. Record is
// called by exactly one sampler goroutine; queries may come from any
// goroutine — both sides take the mutex, which is uncontended in practice
// (one record per epoch, one query per scrape, both sub-millisecond).
type Timeline struct {
	mu     sync.Mutex
	names  []string
	index  map[string]int
	tiers  []tier
	ticks  uint64
	memory int64
}

// New builds a timeline for the given series names over the given tiers
// (nil tiers means DefaultTiers). All memory is allocated here.
func New(names []string, tiers []TierSpec) *Timeline {
	if tiers == nil {
		tiers = DefaultTiers()
	}
	tl := &Timeline{
		names: append([]string(nil), names...),
		index: make(map[string]int, len(names)),
	}
	for i, n := range names {
		tl.index[n] = i
	}
	for _, spec := range tiers {
		if spec.Step < time.Second {
			spec.Step = time.Second
		}
		if spec.Slots < 1 {
			spec.Slots = 1
		}
		t := tier{spec: spec, ring: make([]slot, spec.Slots)}
		for i := range t.ring {
			t.ring[i] = slot{
				bucket: -1,
				sum:    make([]float64, len(names)),
				max:    make([]float64, len(names)),
				n:      make([]uint32, len(names)),
			}
		}
		tl.memory += int64(spec.Slots) * int64(len(names)) * (8 + 8 + 4)
		tl.tiers = append(tl.tiers, t)
	}
	return tl
}

// Names returns the registered series names in record order.
func (tl *Timeline) Names() []string { return append([]string(nil), tl.names...) }

// MemoryBytes reports the (construction-time, constant) payload footprint.
func (tl *Timeline) MemoryBytes() int64 { return tl.memory }

// Ticks returns how many samples Record has absorbed.
func (tl *Timeline) Ticks() uint64 {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	return tl.ticks
}

// Record folds one sample vector (aligned with Names; NaN skips a series
// for this tick) into every tier at the given wall time.
func (tl *Timeline) Record(now time.Time, vals []float64) {
	unix := now.Unix()
	tl.mu.Lock()
	defer tl.mu.Unlock()
	tl.ticks++
	for ti := range tl.tiers {
		t := &tl.tiers[ti]
		bucket := unix / int64(t.spec.Step/time.Second)
		cur := &t.ring[t.head]
		switch {
		case cur.bucket == bucket:
			// same step: accumulate below
		case cur.bucket < 0:
			// first ever sample for this tier
			cur.reset(bucket)
		case bucket > cur.bucket:
			// New step: advance exactly one ring position, however long
			// the sampler was stalled — skipped buckets stay absent.
			t.head = (t.head + 1) % len(t.ring)
			cur = &t.ring[t.head]
			cur.reset(bucket)
		default:
			// Clock stepped backwards past the newest slot: drop the
			// sample rather than corrupting ring order.
			continue
		}
		for i, v := range vals {
			if i >= len(cur.sum) || math.IsNaN(v) {
				continue
			}
			if cur.n[i] == 0 || v > cur.max[i] {
				cur.max[i] = v
			}
			cur.sum[i] += v
			cur.n[i]++
		}
	}
}

// Point is one series sample in a query result. TS is the slot's aligned
// start (unix seconds); Avg and Max aggregate the ticks folded into it.
type Point struct {
	TS  int64   `json:"ts"`
	Avg float64 `json:"avg"`
	Max float64 `json:"max"`
	N   uint32  `json:"n"`
}

// Series is one named curve in a query result.
type Series struct {
	Name   string  `json:"name"`
	Points []Point `json:"points"`
}

// Doc is the /timeline JSON document.
type Doc struct {
	Res         string   `json:"res"`
	StepSeconds int64    `json:"step_seconds"`
	Retention   string   `json:"retention"`
	Resolutions []string `json:"resolutions"`
	SeriesNames []string `json:"series_names,omitempty"`
	Series      []Series `json:"series"`
}

// Resolutions lists the tier names coarse-to-fine callers may query.
func (tl *Timeline) Resolutions() []string {
	out := make([]string, len(tl.tiers))
	for i, t := range tl.tiers {
		out[i] = t.spec.Name()
	}
	return out
}

// tierByRes resolves a resolution name ("1s", "10s", "1m"; empty selects
// the finest tier).
func (tl *Timeline) tierByRes(res string) (int, error) {
	if res == "" {
		return 0, nil
	}
	for i, t := range tl.tiers {
		if t.spec.Name() == res {
			return i, nil
		}
	}
	if d, err := time.ParseDuration(res); err == nil {
		for i, t := range tl.tiers {
			if t.spec.Step == d {
				return i, nil
			}
		}
	}
	return 0, fmt.Errorf("unknown resolution %q (have %v)", res, tl.Resolutions())
}

// Query renders the selected series (nil or empty selects all) at the
// given resolution, restricted to slots starting at or after since (unix
// seconds; 0 means the tier's whole retention). Points come back oldest
// first. Unknown series names and resolutions are errors so operators get
// told about typos instead of empty charts.
func (tl *Timeline) Query(series []string, res string, since int64) (Doc, error) {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	ti, err := tl.tierByRes(res)
	if err != nil {
		return Doc{}, err
	}
	sel := make([]int, 0, len(tl.names))
	if len(series) == 0 {
		for i := range tl.names {
			sel = append(sel, i)
		}
	} else {
		for _, name := range series {
			i, ok := tl.index[name]
			if !ok {
				return Doc{}, fmt.Errorf("unknown series %q", name)
			}
			sel = append(sel, i)
		}
	}
	t := &tl.tiers[ti]
	step := int64(t.spec.Step / time.Second)
	doc := Doc{
		Res:         t.spec.Name(),
		StepSeconds: step,
		Retention:   t.spec.Retention().String(),
		Resolutions: tl.Resolutions(),
		Series:      make([]Series, len(sel)),
	}
	if len(series) == 0 {
		doc.SeriesNames = append([]string(nil), tl.names...)
	}
	for oi, si := range sel {
		doc.Series[oi] = Series{Name: tl.names[si], Points: make([]Point, 0, len(t.ring))}
	}
	// Oldest slot is one past the head; walk the ring forward once.
	for off := 1; off <= len(t.ring); off++ {
		s := &t.ring[(t.head+off)%len(t.ring)]
		if s.bucket < 0 || s.bucket*step < since {
			continue
		}
		for oi, si := range sel {
			if s.n[si] == 0 {
				continue
			}
			doc.Series[oi].Points = append(doc.Series[oi].Points, Point{
				TS:  s.bucket * step,
				Avg: s.sum[si] / float64(s.n[si]),
				Max: s.max[si],
				N:   s.n[si],
			})
		}
	}
	return doc, nil
}

// WindowStats aggregates one series over the trailing window ending at
// now, read from the finest tier — the burn-rate primitive the SLO
// evaluator computes verdicts from. ok is false when the window holds no
// samples (a just-started server, or a sampler stall longer than the
// window).
func (tl *Timeline) WindowStats(name string, window time.Duration, now time.Time) (avg, max float64, ok bool) {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	si, found := tl.index[name]
	if !found || len(tl.tiers) == 0 {
		return 0, 0, false
	}
	t := &tl.tiers[0]
	step := int64(t.spec.Step / time.Second)
	since := now.Add(-window).Unix() / step
	var sum float64
	var n uint32
	for i := range t.ring {
		s := &t.ring[i]
		if s.bucket < since || s.n[si] == 0 {
			continue
		}
		sum += s.sum[si]
		n += s.n[si]
		if s.max[si] > max {
			max = s.max[si]
		}
	}
	if n == 0 {
		return 0, 0, false
	}
	return sum / float64(n), max, true
}
