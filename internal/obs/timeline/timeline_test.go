package timeline

import (
	"testing"
	"time"
)

func at(unix int64) time.Time { return time.Unix(unix, 0) }

// TestTierAlignmentAndDownsampling: ticks landing inside one coarse slot
// fold into a single aligned point whose avg/max/n aggregate them, while
// the fine tier keeps them apart.
func TestTierAlignmentAndDownsampling(t *testing.T) {
	tl := New([]string{"v"}, []TierSpec{
		{Step: time.Second, Slots: 60},
		{Step: 10 * time.Second, Slots: 30},
	})
	// 20 ticks starting at an offset that is NOT 10s-aligned, so alignment
	// has to come from bucket arithmetic, not from the first sample.
	for i := int64(0); i < 20; i++ {
		tl.Record(at(1003+i), []float64{float64(i)})
	}
	fine, err := tl.Query([]string{"v"}, "1s", 0)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(fine.Series[0].Points); n != 20 {
		t.Fatalf("fine tier points = %d, want 20", n)
	}
	if p := fine.Series[0].Points[0]; p.TS != 1003 || p.Avg != 0 || p.N != 1 {
		t.Fatalf("fine first point %+v", p)
	}

	coarse, err := tl.Query([]string{"v"}, "10s", 0)
	if err != nil {
		t.Fatal(err)
	}
	pts := coarse.Series[0].Points
	// Ticks 1003..1022 span aligned buckets [1000,1010), [1010,1020), [1020,1030).
	if len(pts) != 3 {
		t.Fatalf("coarse tier points = %d (%+v), want 3", len(pts), pts)
	}
	if pts[0].TS != 1000 || pts[0].N != 7 {
		t.Fatalf("first coarse slot %+v, want ts=1000 n=7", pts[0])
	}
	if pts[1].TS != 1010 || pts[1].N != 10 || pts[1].Max != 16 {
		// values 7..16 landed in [1010,1020)
		t.Fatalf("second coarse slot %+v", pts[1])
	}
	if wantAvg := (7.0 + 16.0) / 2; pts[1].Avg != wantAvg {
		t.Fatalf("second coarse avg = %g, want %g", pts[1].Avg, wantAvg)
	}
}

// TestRingWrapAround: a tier retains exactly its slot count; older slots
// are overwritten in arrival order and queries return only the retained
// window, oldest first.
func TestRingWrapAround(t *testing.T) {
	tl := New([]string{"v"}, []TierSpec{{Step: time.Second, Slots: 5}})
	for i := int64(0); i < 12; i++ {
		tl.Record(at(100+i), []float64{float64(i)})
	}
	doc, err := tl.Query(nil, "1s", 0)
	if err != nil {
		t.Fatal(err)
	}
	pts := doc.Series[0].Points
	if len(pts) != 5 {
		t.Fatalf("retained %d points, want 5", len(pts))
	}
	for i, p := range pts {
		wantTS := int64(100 + 7 + i) // last 5 of 12 ticks
		if p.TS != wantTS || p.Avg != float64(7+i) {
			t.Fatalf("point %d = %+v, want ts=%d avg=%d", i, p, wantTS, 7+i)
		}
	}
}

// TestEpochGapsAfterStall: a sampler stall advances the ring by one slot
// when it resumes; the skipped buckets are absent from query results, not
// zero-filled or interpolated.
func TestEpochGapsAfterStall(t *testing.T) {
	tl := New([]string{"v"}, []TierSpec{{Step: time.Second, Slots: 10}})
	tl.Record(at(200), []float64{1})
	tl.Record(at(201), []float64{2})
	// 6-second stall.
	tl.Record(at(207), []float64{3})
	tl.Record(at(208), []float64{4})
	doc, err := tl.Query(nil, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	var ts []int64
	for _, p := range doc.Series[0].Points {
		ts = append(ts, p.TS)
	}
	want := []int64{200, 201, 207, 208}
	if len(ts) != len(want) {
		t.Fatalf("timestamps %v, want %v", ts, want)
	}
	for i := range want {
		if ts[i] != want[i] {
			t.Fatalf("timestamps %v, want %v", ts, want)
		}
	}
	// The stall cost at most one ring slot: 4 samples occupy 4 slots, so
	// capacity for 6 more remains even though 9 wall seconds elapsed.
	for i := int64(0); i < 6; i++ {
		tl.Record(at(209+i), []float64{9})
	}
	doc, _ = tl.Query(nil, "", 0)
	if got := len(doc.Series[0].Points); got != 10 {
		t.Fatalf("after refill: %d points, want 10 (stall must not burn slots)", got)
	}
}

// TestSinceAndSeriesSelection: since filters by slot start; unknown series
// and resolutions are errors.
func TestSinceAndSeriesSelection(t *testing.T) {
	tl := New([]string{"a", "b"}, []TierSpec{{Step: time.Second, Slots: 10}})
	for i := int64(0); i < 6; i++ {
		tl.Record(at(300+i), []float64{float64(i), float64(10 * i)})
	}
	doc, err := tl.Query([]string{"b"}, "1s", 303)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Series) != 1 || doc.Series[0].Name != "b" {
		t.Fatalf("series selection: %+v", doc.Series)
	}
	if n := len(doc.Series[0].Points); n != 3 {
		t.Fatalf("since filter kept %d points, want 3", n)
	}
	if p := doc.Series[0].Points[0]; p.TS != 303 || p.Avg != 30 {
		t.Fatalf("first point %+v", p)
	}
	if _, err := tl.Query([]string{"nope"}, "", 0); err == nil {
		t.Fatal("unknown series accepted")
	}
	if _, err := tl.Query(nil, "5s", 0); err == nil {
		t.Fatal("unknown resolution accepted")
	}
}

// TestNaNSkipsSeries: NaN marks a series as absent for the tick without
// disturbing the others.
func TestNaNSkipsSeries(t *testing.T) {
	tl := New([]string{"a", "b"}, nil)
	nan := func() float64 { var z float64; return z / z }
	tl.Record(at(400), []float64{1, nan()})
	doc, err := tl.Query(nil, "1s", 0)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(doc.Series[0].Points); n != 1 {
		t.Fatalf("series a points = %d", n)
	}
	if n := len(doc.Series[1].Points); n != 0 {
		t.Fatalf("series b points = %d, want 0 (NaN tick)", n)
	}
}

// TestBoundedMemoryAndDefaults: default tiers cover 5m/1h/24h and the
// footprint is fixed at construction regardless of how long the server
// runs.
func TestBoundedMemoryAndDefaults(t *testing.T) {
	names := make([]string, 40)
	for i := range names {
		names[i] = string(rune('a' + i%26))
	}
	tl := New(names, nil)
	res := tl.Resolutions()
	if len(res) != 3 || res[0] != "1s" || res[1] != "10s" || res[2] != "1m" {
		t.Fatalf("default resolutions = %v", res)
	}
	mem := tl.MemoryBytes()
	// (300+360+1440) slots x 40 series x 20 bytes = 1.68 MB.
	if mem != (300+360+1440)*40*20 {
		t.Fatalf("memory = %d", mem)
	}
	for i := int64(0); i < 100_000; i++ {
		tl.Record(at(1000+i), make([]float64, 40))
	}
	if tl.MemoryBytes() != mem {
		t.Fatal("memory grew with ticks")
	}
	if tl.Ticks() != 100_000 {
		t.Fatalf("ticks = %d", tl.Ticks())
	}
	// 24h tier retains 1440 slots; 100k 1s-ticks fold into minutes.
	doc, err := tl.Query([]string{names[0]}, "1m", 0)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(doc.Series[0].Points); n != 1440 {
		t.Fatalf("1m tier points = %d, want full 1440", n)
	}
	if p := doc.Series[0].Points[0]; p.N != 60 {
		t.Fatalf("1m slot folded %d ticks, want 60", p.N)
	}
}

// TestWindowStats: the SLO primitive averages the trailing window on the
// finest tier and reports absence when the window is empty.
func TestWindowStats(t *testing.T) {
	tl := New([]string{"v"}, nil)
	if _, _, ok := tl.WindowStats("v", 10*time.Second, at(500)); ok {
		t.Fatal("empty timeline reported a window")
	}
	for i := int64(0); i < 30; i++ {
		tl.Record(at(500+i), []float64{float64(i)})
	}
	avg, max, ok := tl.WindowStats("v", 10*time.Second, at(529))
	if !ok {
		t.Fatal("window empty")
	}
	// Window [519..529] holds values 19..29.
	if max != 29 {
		t.Fatalf("window max = %g", max)
	}
	if avg < 23 || avg > 25 {
		t.Fatalf("window avg = %g, want ~24", avg)
	}
	if _, _, ok := tl.WindowStats("missing", time.Second, at(529)); ok {
		t.Fatal("unknown series reported a window")
	}
}
