package obs

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"oij/internal/metrics"
)

func TestBucketLayout(t *testing.T) {
	// Lower bounds are strictly increasing and invert bucketIndex.
	prev := int64(-1)
	for i := 0; i < histBuckets; i++ {
		lo := bucketLower(i)
		if lo <= prev {
			t.Fatalf("bucket %d lower %d <= previous %d", i, lo, prev)
		}
		if got := bucketIndex(lo); got != i {
			t.Fatalf("bucketIndex(bucketLower(%d)) = %d", i, got)
		}
		prev = lo
	}
	// Every value lands in a bucket whose range contains it.
	rng := rand.New(rand.NewSource(1))
	for n := 0; n < 100000; n++ {
		v := rng.Int63() >> uint(rng.Intn(60))
		i := bucketIndex(v)
		if lo := bucketLower(i); v < lo {
			t.Fatalf("value %d below its bucket %d lower %d", v, i, lo)
		}
		if i+1 < histBuckets {
			if hi := bucketLower(i + 1); v >= hi {
				t.Fatalf("value %d at or above next bucket lower %d", v, hi)
			}
		}
	}
	if bucketIndex(-5) != 0 {
		t.Fatal("negative values must clamp to bucket 0")
	}
}

func TestHistogramSmallValuesExact(t *testing.T) {
	var h Histogram
	for v := int64(0); v < histSub; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.N != histSub {
		t.Fatalf("N = %d", s.N)
	}
	// Below histSub buckets are exact, so quantiles are exact.
	if got := s.Quantile(0.5); got != histSub/2-1 {
		t.Fatalf("p50 = %d", got)
	}
	if got := s.Quantile(1); got != histSub-1 {
		t.Fatalf("p100 = %d", got)
	}
	if s.Max != histSub-1 {
		t.Fatalf("max = %d", s.Max)
	}
}

// TestHistogramMergeEquivalence is the satellite acceptance check: the
// streaming histogram's quantiles, merged across shards, agree with the
// exact CDF quantiles within one bucket width.
func TestHistogramMergeEquivalence(t *testing.T) {
	const shards = 4
	const perShard = 5000
	rng := rand.New(rand.NewSource(42))
	hs := make([]Histogram, shards)
	recs := make([]*metrics.LatencyRecorder, shards)
	for i := range recs {
		recs[i] = metrics.NewLatencyRecorder(perShard)
	}
	for i := 0; i < shards; i++ {
		for n := 0; n < perShard; n++ {
			// Log-uniform latencies from ~1µs to ~100ms in ns.
			v := int64(1000 * (1 + rng.Float64()*rng.Float64()*100000))
			hs[i].Observe(v)
			recs[i].Record(time.Duration(v))
		}
	}
	merged := &HistSnapshot{}
	for i := range hs {
		merged.Merge(&hs[i])
	}
	cdf := metrics.MergeCDF(recs...)
	if merged.N != int64(len(cdf.Sorted)) {
		t.Fatalf("counts diverge: %d vs %d", merged.N, len(cdf.Sorted))
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 0.999} {
		exact := int64(cdf.Quantile(q))
		approx := merged.Quantile(q)
		width := bucketWidth(bucketIndex(exact))
		if approx > exact || exact-approx > width {
			t.Fatalf("q=%g: histogram %d vs exact %d (allowed width %d)", q, approx, exact, width)
		}
	}
}

// TestHistogramConcurrentSnapshot exercises snapshot-while-recording under
// the race detector: one writer per shard, one reader merging continuously.
func TestHistogramConcurrentSnapshot(t *testing.T) {
	const shards = 4
	const perShard = 20000
	hs := make([]Histogram, shards)
	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := &HistSnapshot{}
			var direct int64
			for i := range hs {
				s.Merge(&hs[i])
			}
			for _, c := range s.Counts {
				direct += int64(c)
			}
			// The invariant mid-run: the snapshot is internally
			// consistent (N equals the summed buckets it actually read).
			if direct != s.N {
				t.Errorf("snapshot N %d != summed buckets %d", s.N, direct)
				return
			}
		}
	}()
	var writerWG sync.WaitGroup
	for i := 0; i < shards; i++ {
		writerWG.Add(1)
		go func(h *Histogram, seed int64) {
			defer writerWG.Done()
			rng := rand.New(rand.NewSource(seed))
			for n := 0; n < perShard; n++ {
				h.Observe(rng.Int63n(1 << 30))
			}
		}(&hs[i], int64(i))
	}
	writerWG.Wait()
	close(stop)
	readerWG.Wait()
	s := &HistSnapshot{}
	for i := range hs {
		s.Merge(&hs[i])
	}
	if s.N != shards*perShard {
		t.Fatalf("final N = %d, want %d", s.N, shards*perShard)
	}
}

func TestCounterGaugeVecs(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounterVec("test_counter", "h", 3)
	c.Shard(0).Add(5)
	c.Shard(1).Inc()
	c.Shard(2).Add(4)
	if c.Total() != 10 {
		t.Fatalf("total = %d", c.Total())
	}
	g := r.NewGaugeVec("test_gauge", "h", 2)
	g.Shard(0).Set(0.25)
	g.Shard(1).Set(-1)
	vs := g.Values()
	if vs[0] != 0.25 || vs[1] != -1 {
		t.Fatalf("gauge values = %v", vs)
	}
}

// TestInstrumentsConcurrent hammers shard-local writes with a concurrent
// scraper under -race.
func TestInstrumentsConcurrent(t *testing.T) {
	r := NewRegistry()
	const shards = 4
	c := r.NewCounterVec("c_total", "h", shards)
	g := r.NewGaugeVec("g", "h", shards)
	h := r.NewHistogramVec("h_seconds", "h", shards, 1e9, nil)
	r.NewGaugeFunc("gf", "h", func() float64 { return float64(c.Total()) })
	r.NewGaugeVecFunc("gvf", "h", func() []float64 { return g.Values() })

	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Errorf("WritePrometheus: %v", err)
				return
			}
		}
	}()
	var writers sync.WaitGroup
	for i := 0; i < shards; i++ {
		writers.Add(1)
		go func(i int) {
			defer writers.Done()
			for n := 0; n < 10000; n++ {
				c.Shard(i).Inc()
				g.Shard(i).Set(float64(n))
				h.Shard(i).Observe(int64(n * 1000))
			}
		}(i)
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	if c.Total() != 4*10000 {
		t.Fatalf("counter total = %d", c.Total())
	}
	if h.Snapshot().N != 4*10000 {
		t.Fatalf("histogram N = %d", h.Snapshot().N)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("oij_served_total", "Tuples served.")
	c.Add(7)
	v := r.NewCounterVec("oij_results_total", "Results.", 2)
	v.Shard(1).Add(3)
	r.NewGaugeFunc("oij_lag", "Lag.", func() float64 { return 1.5 })
	h := r.NewHistogramVec("oij_latency_seconds", "Latency.", 1, 1e9, []float64{0.5})
	h.Shard(0).Observe(2_000_000_000)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE oij_served_total counter",
		"oij_served_total 7",
		`oij_results_total{joiner="0"} 0`,
		`oij_results_total{joiner="1"} 3`,
		"# TYPE oij_lag gauge",
		"oij_lag 1.5",
		"# TYPE oij_latency_seconds summary",
		"oij_latency_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in output:\n%s", want, out)
		}
	}
	// The 2s observation renders in seconds within bucket error (~3%).
	qline := `oij_latency_seconds{quantile="0.5"} `
	i := strings.Index(out, qline)
	if i < 0 {
		t.Fatalf("no quantile line in:\n%s", out)
	}
	rest := out[i+len(qline):]
	rest = rest[:strings.IndexByte(rest, '\n')]
	if !strings.HasPrefix(rest, "1.9") && !strings.HasPrefix(rest, "2") {
		t.Fatalf("p50 rendered as %q, want ≈2s", rest)
	}
}

// sortedQuantileCheck guards the nearest-rank convention shared with
// metrics.CDF: 100 samples 1..100 → p99 is the 99th value.
func TestHistogramNearestRank(t *testing.T) {
	var h Histogram
	for v := int64(1); v <= 100; v++ {
		h.Observe(v * 1000)
	}
	s := h.Snapshot()
	got := s.Quantile(0.99)
	// Nearest rank 99 → sample 99000; the bucket lower bound may round
	// down by at most one bucket width.
	if got > 99000 || 99000-got > bucketWidth(bucketIndex(99000)) {
		t.Fatalf("p99 = %d, want within one bucket of 99000", got)
	}
	if s.Quantile(0) != s.Quantile(0.0001) {
		t.Fatal("q≈0 should clamp to rank 1")
	}
}
