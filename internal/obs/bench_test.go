package obs

import (
	"io"
	"testing"
)

// buildScrapeRegistry populates a registry shaped like a real oijd serving
// 8 joiners: the instrument mix mirrors newServerObs (counters, sharded
// gauges, gauge funcs, a sharded latency histogram with recorded samples).
func buildScrapeRegistry(joiners int) *Registry {
	r := NewRegistry()
	r.NewInfo("oij_build_info", "build identity", [][2]string{{"version", "bench"}, {"go", "test"}})
	probes := r.NewCounterVec("oij_probes_total", "probe tuples ingested", joiners)
	bases := r.NewCounterVec("oij_bases_total", "base tuples ingested", joiners)
	results := r.NewCounterVec("oij_results_total", "join results emitted", joiners)
	depth := r.NewGaugeVec("oij_queue_depth", "per-joiner queue depth", joiners)
	r.NewGaugeVec("oij_watermark_lag_seconds", "watermark lag", joiners)
	r.NewGaugeFunc("oij_uptime_seconds", "process uptime", func() float64 { return 42.5 })
	util := r.NewGaugeVec("oij_joiner_utilization", "fraction of epoch spent joining", joiners)
	lat := r.NewHistogramVec("oij_probe_latency_seconds", "probe latency", joiners, 1e9, nil)
	for i := 0; i < joiners; i++ {
		probes.Shard(i).Add(int64(1000 * (i + 1)))
		bases.Shard(i).Add(int64(500 * (i + 1)))
		results.Shard(i).Add(int64(250 * (i + 1)))
		depth.Shard(i).Set(float64(i * 3))
		util.Shard(i).Set(float64(i) / float64(joiners))
		h := lat.Shard(i)
		for v := int64(1); v < 4096; v += 17 {
			h.Observe(v * 1000)
		}
	}
	return r
}

// BenchmarkScrape measures one /metrics render. The encoder builds the
// document in a pooled buffer with strconv appends, so steady-state
// allocs/op stays flat no matter how many instruments or shards exist.
func BenchmarkScrape(b *testing.B) {
	r := buildScrapeRegistry(8)
	// Warm the pool so the first-iteration buffer growth is not billed.
	if err := r.WritePrometheus(io.Discard); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.WritePrometheus(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
