// Log-bucketed streaming histogram (HDR-style): fixed allocation, bounded
// relative error, lock-free single-writer recording with concurrent
// snapshot reads. It replaces unbounded sample retention on the serving
// path while still rendering the paper's latency CDF quantiles (§III-B).
package obs

import (
	"math/bits"
	"sync/atomic"
)

// Bucket layout: values below histSub are exact (one bucket per value);
// above that, each power of two is split into histSub sub-buckets, so the
// relative bucket width — and therefore the worst-case quantile error — is
// 1/histSub ≈ 3%. The layout covers the full non-negative int64 range in
// histBuckets fixed slots (no resizing, no allocation after construction).
const (
	histSubBits = 5
	histSub     = 1 << histSubBits
	histBuckets = (64 - histSubBits) * histSub
)

// bucketIndex maps a non-negative value to its bucket (negatives clamp to
// zero: latency underflow from clock steps should not corrupt the layout).
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	u := uint64(v)
	if u < histSub {
		return int(u)
	}
	e := uint(bits.Len64(u)) - 1 // 2^e <= u < 2^(e+1), e >= histSubBits
	sub := (u >> (e - histSubBits)) & (histSub - 1)
	return int(e-histSubBits+1)*histSub + int(sub)
}

// bucketLower returns the smallest value mapping to bucket i.
func bucketLower(i int) int64 {
	if i < histSub {
		return int64(i)
	}
	e := uint(i/histSub) + histSubBits - 1
	sub := uint64(i % histSub)
	return int64(1<<e | sub<<(e-histSubBits))
}

// bucketWidth returns the width of bucket i (the maximum error of reporting
// a bucket by its lower bound).
func bucketWidth(i int) int64 {
	if i+1 < histBuckets {
		return bucketLower(i+1) - bucketLower(i)
	}
	return bucketLower(i) >> histSubBits
}

// Histogram is a fixed-size streaming histogram. Exactly one goroutine may
// call Observe (single-writer-per-shard, the same SWMR discipline as the
// time-travel index); any goroutine may call Snapshot concurrently. All
// state is atomics, so recording never blocks and snapshots never stop the
// writer.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	count  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64 // single-writer: load+store without CAS
}

// Observe records one value. Single writer only.
func (h *Histogram) Observe(v int64) {
	h.counts[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	if v > h.max.Load() {
		h.max.Store(v)
	}
}

// Count returns the number of recorded values.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Snapshot copies the histogram state without stopping the writer. The
// copy is per-bucket atomic: a concurrent Observe lands in either the
// snapshot or the next one, never half-way.
func (h *Histogram) Snapshot() *HistSnapshot {
	s := &HistSnapshot{}
	s.Merge(h)
	return s
}

// HistSnapshot is a point-in-time merged view of one or more histograms;
// build one with Histogram.Snapshot or merge shards into a zero value.
type HistSnapshot struct {
	Counts [histBuckets]uint64
	N      int64
	Sum    int64
	Max    int64
}

// Merge folds a live histogram shard into the snapshot.
func (s *HistSnapshot) Merge(h *Histogram) {
	var n uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] += c
		n += c
	}
	// Derive N from the buckets actually read so quantile ranks are
	// consistent with Counts even mid-Observe.
	s.N += int64(n)
	s.Sum += h.sum.Load()
	if m := h.max.Load(); m > s.Max {
		s.Max = m
	}
}

// Quantile returns the nearest-rank q-quantile as the lower bound of the
// bucket holding that rank — within one bucket width (≈3% relative) of the
// exact sample quantile.
func (s *HistSnapshot) Quantile(q float64) int64 {
	if s.N == 0 {
		return 0
	}
	rank := int64(q*float64(s.N) + 0.9999999999)
	if rank < 1 {
		rank = 1
	}
	if rank > s.N {
		rank = s.N
	}
	var cum int64
	for i := range s.Counts {
		cum += int64(s.Counts[i])
		if cum >= rank {
			return bucketLower(i)
		}
	}
	return s.Max
}

// Mean returns the exact mean of recorded values (the sum is tracked
// exactly, not from bucket bounds).
func (s *HistSnapshot) Mean() float64 {
	if s.N == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.N)
}

// ErrorBoundAt returns the maximum absolute error of Quantile results near
// value v: the width of v's bucket.
func (s *HistSnapshot) ErrorBoundAt(v int64) int64 { return bucketWidth(bucketIndex(v)) }
