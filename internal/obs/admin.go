package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Admin is the observability HTTP endpoint of a running daemon. It serves
//
//	/metrics       Prometheus text exposition of a Registry
//	/statusz       JSON snapshot produced by the status callback
//	/debug/pprof/  the standard Go profiling handlers
//
// plus any extra endpoints the caller registers (the server adds /tracez
// and /debug/flightrecorder), on its own mux (never http.DefaultServeMux,
// so importing this package cannot leak pprof onto an application server).
type Admin struct {
	srv *http.Server
	ln  net.Listener
}

// Endpoint is an extra admin route registered at ServeAdmin time.
type Endpoint struct {
	Path    string
	Handler http.HandlerFunc
}

// ServeAdmin binds addr (use ":0" for an ephemeral port) and serves the
// admin endpoints in a background goroutine. status is invoked per
// /statusz request and must be safe from any goroutine; nil disables the
// endpoint.
func ServeAdmin(addr string, reg *Registry, status func() any, extra ...Endpoint) (*Admin, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	if status != nil {
		mux.HandleFunc("/statusz", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(status())
		})
	}
	for _, e := range extra {
		mux.HandleFunc(e.Path, e.Handler)
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	a := &Admin{srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}, ln: ln}
	go a.srv.Serve(ln)
	return a, nil
}

// Addr returns the bound address.
func (a *Admin) Addr() net.Addr { return a.ln.Addr() }

// Close stops the admin server, interrupting in-flight scrapes.
func (a *Admin) Close() error { return a.srv.Close() }
