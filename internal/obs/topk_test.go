package obs

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestTopKExactBelowCapacity: with fewer distinct keys than slots the
// sketch is an exact counter (zero error).
func TestTopKExactBelowCapacity(t *testing.T) {
	tk := NewTopK(8)
	for k := uint64(0); k < 5; k++ {
		for i := uint64(0); i <= k; i++ {
			tk.Observe(k)
		}
	}
	s := tk.Snapshot()
	if s.Total != 1+2+3+4+5 {
		t.Fatalf("total = %d", s.Total)
	}
	if len(s.Entries) != 5 {
		t.Fatalf("entries = %d", len(s.Entries))
	}
	if s.Entries[0].Key != 4 || s.Entries[0].Count != 5 || s.Entries[0].Err != 0 {
		t.Fatalf("hottest = %+v", s.Entries[0])
	}
	for _, e := range s.Entries {
		if e.Err != 0 {
			t.Fatalf("exact regime produced error bound: %+v", e)
		}
	}
}

// TestTopKBounds: counts always overestimate, and the overestimation is
// bounded by the recorded per-entry error — the SpaceSaving invariant
// count-err <= true <= count.
func TestTopKBounds(t *testing.T) {
	const k, n = 16, 20000
	tk := NewTopK(k)
	truth := map[uint64]uint64{}
	draw := newZipf(42)
	for i := 0; i < n; i++ {
		key := draw()
		truth[key]++
		tk.Observe(key)
	}
	s := tk.Snapshot()
	if s.Total != n {
		t.Fatalf("total = %d", s.Total)
	}
	for _, e := range s.Entries {
		f := truth[e.Key]
		if f > e.Count {
			t.Fatalf("count underestimates: key %d true %d count %d", e.Key, f, e.Count)
		}
		if e.Count-e.Err > f {
			t.Fatalf("error bound violated: key %d true %d count %d err %d", e.Key, f, e.Count, e.Err)
		}
	}
	// The classic guarantee: any key with true frequency > Total/k is
	// resident in the sketch.
	resident := map[uint64]bool{}
	for _, e := range s.Entries {
		resident[e.Key] = true
	}
	for key, f := range truth {
		if f > n/k && !resident[key] {
			t.Fatalf("key %d (freq %d > %d) not resident", key, f, n/k)
		}
	}
}

// TestMergeDeterministic: merging per-shard snapshots is independent of
// shard order — the property that makes /statusz hot-key documents stable
// across scrapes of an unchanged stream.
func TestMergeDeterministic(t *testing.T) {
	h := NewHotKeys(4, 8, nil)
	draw := newZipf(7)
	for i := 0; i < 50000; i++ {
		h.Observe(draw())
	}
	snaps := make([]TopKSnapshot, h.Shards())
	for i := range snaps {
		snaps[i] = h.ShardSnapshot(i)
	}
	base := MergeTopK(8, snaps...)
	if base.Total != h.Total() {
		t.Fatalf("merged total %d, tracker total %d", base.Total, h.Total())
	}
	perms := [][]int{{3, 1, 0, 2}, {2, 3, 1, 0}, {1, 0, 3, 2}}
	for _, p := range perms {
		shuffled := make([]TopKSnapshot, len(p))
		for i, j := range p {
			shuffled[i] = snaps[j]
		}
		got := MergeTopK(8, shuffled...)
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("merge not deterministic under permutation %v:\n%+v\nvs\n%+v", p, got, base)
		}
	}
	// Identity-hash shards partition the key space: the merge is exact, so
	// each merged entry equals the single shard entry it came from.
	for _, e := range base.Entries {
		shard := snaps[e.Key%4]
		found := false
		for _, se := range shard.Entries {
			if se.Key == e.Key {
				found = se == e
			}
		}
		if !found {
			t.Fatalf("merged entry %+v not byte-equal to its shard's entry", e)
		}
	}
}

// TestHotKeysShardRouting: keys land in the shard the hash assigns, so
// per-joiner skew is attributed to the right joiner.
func TestHotKeysShardRouting(t *testing.T) {
	h := NewHotKeys(3, 4, nil)
	for i := 0; i < 30; i++ {
		h.Observe(5) // 5 % 3 == shard 2
	}
	for i, want := range []uint64{0, 0, 30} {
		if got := h.ShardSnapshot(i).Total; got != want {
			t.Fatalf("shard %d total = %d, want %d", i, got, want)
		}
	}
	top1, topK := h.TopShare(4)
	if top1 != 1 || topK != 1 {
		t.Fatalf("single-key stream shares = %g, %g, want 1, 1", top1, topK)
	}
}

// newZipf builds a deterministic skewed key source: Zipf(1.3) over 4096
// distinct keys — a few hot keys over a long tail.
func newZipf(seed int64) func() uint64 {
	z := rand.NewZipf(rand.New(rand.NewSource(seed)), 1.3, 1, 1<<12)
	return z.Uint64
}

// TestTopKScanAndMapPathsAgree: the key-lookup implementation switches
// from a packed linear scan to a map above scanLimit. Two sketches with
// the same effective capacity but different lookup paths must produce
// identical snapshots for the same stream — the scan is an optimization,
// never a semantic change.
func TestTopKScanAndMapPathsAgree(t *testing.T) {
	const k = scanLimit // scan path
	scan := NewTopK(k)
	mapped := NewTopK(scanLimit + 1) // map path, one extra slot
	if scan.idx != nil || mapped.idx == nil {
		t.Fatalf("lookup paths not as expected: scan.idx=%v mapped.idx=%v", scan.idx, mapped.idx)
	}
	rng := rand.New(rand.NewSource(7))
	zipf := rand.NewZipf(rng, 1.2, 1, 1<<20)
	for i := 0; i < 50000; i++ {
		key := zipf.Uint64()
		scan.Observe(key)
		mapped.Observe(key)
	}
	a, b := scan.Snapshot(), mapped.Snapshot()
	// The extra slot can only add one trailing entry; compare the common
	// prefix where both sketches are defined.
	if a.Total != b.Total {
		t.Fatalf("totals diverge: %d vs %d", a.Total, b.Total)
	}
	// The hot head of the distribution must agree exactly: any key both
	// sketches retain has path-independent count and error.
	inB := map[uint64]TopKEntry{}
	for _, e := range b.Entries {
		inB[e.Key] = e
	}
	for i, e := range a.Entries[:8] {
		be, ok := inB[e.Key]
		if !ok {
			t.Fatalf("scan entry %d (%+v) missing from map-path sketch", i, e)
		}
		if !reflect.DeepEqual(e, be) {
			t.Fatalf("entry for key %d diverges: scan %+v map %+v", e.Key, e, be)
		}
	}
}
