package csvsrc

import (
	"strings"
	"testing"
)

// Edge cases the trace-replay path (internal/workload/pattern) depends on:
// Windows line endings, truncated rows, and missing trailing newlines must
// behave predictably before a profile replays the file as a workload.

func TestCRLFLineEndings(t *testing.T) {
	lf := "ts,key,val\n100,7,1.5\n200,8,2.5\n"
	crlf := strings.ReplaceAll(lf, "\n", "\r\n")
	m := Mapping{Key: "key", Time: "ts", Value: "val"}

	read := func(in string) []Record {
		s, err := NewScanner(strings.NewReader(in), m)
		if err != nil {
			t.Fatal(err)
		}
		recs, err := s.ReadAll()
		if err != nil {
			t.Fatal(err)
		}
		return recs
	}
	a, b := read(lf), read(crlf)
	if len(a) != 2 || len(b) != 2 {
		t.Fatalf("row counts: lf=%d crlf=%d, want 2", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs between LF and CRLF: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestTruncatedFinalRow(t *testing.T) {
	// The file was cut mid-row: the last line misses a field. The scanner
	// must fail loudly, not silently replay a short workload.
	in := "ts,key,val\n100,7,1.5\n200,8\n"
	s, err := NewScanner(strings.NewReader(in), Mapping{Key: "key", Time: "ts", Value: "val"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadAll(); err == nil {
		t.Fatal("truncated final row parsed without error")
	}
}

func TestMissingTrailingNewline(t *testing.T) {
	// A complete final row without a trailing newline is fine.
	in := "ts,key,val\n100,7,1.5\n200,8,2.5"
	s, err := NewScanner(strings.NewReader(in), Mapping{Key: "key", Time: "ts", Value: "val"})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := s.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1].TS != 200 {
		t.Fatalf("got %d rows (%+v), want 2", len(recs), recs)
	}
}

func TestTruncatedFinalValue(t *testing.T) {
	// The cut landed inside the value field: right arity, garbage number.
	in := "ts,key,val\n100,7,1.5\n200,8,2.\x00"
	s, err := NewScanner(strings.NewReader(in), Mapping{Key: "key", Time: "ts", Value: "val"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadAll(); err == nil {
		t.Fatal("corrupt final value parsed without error")
	}
}
