// Package csvsrc turns CSV files into tuple streams for the serving tools
// (cmd/oijsend): it maps named columns to the join key, event timestamp and
// numeric payload, hashing string keys and parsing several timestamp
// encodings. This is the "load your real data" path of the repository —
// the experiments synthesize their streams instead.
package csvsrc

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"oij/internal/tuple"
)

// TimeFormat names a supported timestamp encoding.
type TimeFormat string

// Supported timestamp encodings.
const (
	UnixMicro TimeFormat = "unixus" // integer microseconds
	UnixMilli TimeFormat = "unixms" // integer milliseconds
	UnixSec   TimeFormat = "unixs"  // integer (or fractional) seconds
	RFC3339   TimeFormat = "rfc3339"
)

// Mapping selects and interprets the relevant CSV columns, by header name.
type Mapping struct {
	// Key is the join-key column; non-numeric values are FNV-hashed.
	Key string
	// Time is the event-timestamp column.
	Time string
	// Value is the numeric payload column; empty means payload 0 (pure
	// counting workloads).
	Value string
	// TimeFormat defaults to UnixMicro.
	TimeFormat TimeFormat
}

// Record is one parsed CSV row.
type Record struct {
	Key tuple.Key
	TS  tuple.Time
	Val float64
}

// Scanner streams Records from one CSV file. The first row must be a
// header naming the mapped columns.
type Scanner struct {
	r       *csv.Reader
	m       Mapping
	keyIdx  int
	timeIdx int
	valIdx  int // -1 when unmapped
	line    int
}

// NewScanner reads the header and resolves the mapping.
func NewScanner(r io.Reader, m Mapping) (*Scanner, error) {
	if m.Key == "" || m.Time == "" {
		return nil, fmt.Errorf("csvsrc: mapping requires Key and Time columns")
	}
	if m.TimeFormat == "" {
		m.TimeFormat = UnixMicro
	}
	switch m.TimeFormat {
	case UnixMicro, UnixMilli, UnixSec, RFC3339:
	default:
		return nil, fmt.Errorf("csvsrc: unknown time format %q", m.TimeFormat)
	}
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("csvsrc: reading header: %w", err)
	}
	s := &Scanner{r: cr, m: m, keyIdx: -1, timeIdx: -1, valIdx: -1, line: 1}
	for i, name := range header {
		switch name {
		case m.Key:
			s.keyIdx = i
		case m.Time:
			s.timeIdx = i
		case m.Value:
			if m.Value != "" {
				s.valIdx = i
			}
		}
	}
	if s.keyIdx < 0 {
		return nil, fmt.Errorf("csvsrc: key column %q not in header %v", m.Key, header)
	}
	if s.timeIdx < 0 {
		return nil, fmt.Errorf("csvsrc: time column %q not in header %v", m.Time, header)
	}
	if m.Value != "" && s.valIdx < 0 {
		return nil, fmt.Errorf("csvsrc: value column %q not in header %v", m.Value, header)
	}
	return s, nil
}

// Next returns the next record, or io.EOF at end of input.
func (s *Scanner) Next() (Record, error) {
	row, err := s.r.Read()
	if err != nil {
		return Record{}, err
	}
	s.line++
	var rec Record

	rec.Key = parseKey(row[s.keyIdx])
	rec.TS, err = s.parseTime(row[s.timeIdx])
	if err != nil {
		return Record{}, fmt.Errorf("csvsrc: line %d: %w", s.line, err)
	}
	if s.valIdx >= 0 {
		rec.Val, err = strconv.ParseFloat(row[s.valIdx], 64)
		if err != nil {
			return Record{}, fmt.Errorf("csvsrc: line %d: bad value %q", s.line, row[s.valIdx])
		}
	}
	return rec, nil
}

// parseKey keeps numeric keys verbatim and hashes anything else (FNV-1a),
// matching the public API's HashString so mixed producers agree.
func parseKey(s string) tuple.Key {
	if n, err := strconv.ParseUint(s, 10, 64); err == nil {
		return tuple.Key(n)
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return tuple.Key(h)
}

func (s *Scanner) parseTime(v string) (tuple.Time, error) {
	switch s.m.TimeFormat {
	case RFC3339:
		t, err := time.Parse(time.RFC3339, v)
		if err != nil {
			return 0, fmt.Errorf("bad RFC3339 timestamp %q", v)
		}
		return t.UnixMicro(), nil
	case UnixSec:
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return 0, fmt.Errorf("bad unix-seconds timestamp %q", v)
		}
		return tuple.Time(f * 1e6), nil
	default:
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("bad integer timestamp %q", v)
		}
		if s.m.TimeFormat == UnixMilli {
			n *= 1000
		}
		return n, nil
	}
}

// ReadAll drains the scanner.
func (s *Scanner) ReadAll() ([]Record, error) {
	var out []Record
	for {
		rec, err := s.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}
