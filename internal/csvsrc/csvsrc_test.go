package csvsrc

import (
	"io"
	"strings"
	"testing"
)

func TestBasicMapping(t *testing.T) {
	in := "user,ts,amount,ignored\n42,1000,2.5,x\n7,2000,0.5,y\n"
	s, err := NewScanner(strings.NewReader(in), Mapping{Key: "user", Time: "ts", Value: "amount"})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := s.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("%d records", len(recs))
	}
	if recs[0].Key != 42 || recs[0].TS != 1000 || recs[0].Val != 2.5 {
		t.Fatalf("rec0 = %+v", recs[0])
	}
	if recs[1].Key != 7 || recs[1].TS != 2000 || recs[1].Val != 0.5 {
		t.Fatalf("rec1 = %+v", recs[1])
	}
}

func TestStringKeysHashed(t *testing.T) {
	in := "k,ts\nalice,1\nbob,2\nalice,3\n"
	s, err := NewScanner(strings.NewReader(in), Mapping{Key: "k", Time: "ts"})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := s.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Key != recs[2].Key {
		t.Fatal("same string key hashed differently")
	}
	if recs[0].Key == recs[1].Key {
		t.Fatal("different string keys collided")
	}
	if recs[0].Val != 0 {
		t.Fatal("unmapped value column not zero")
	}
}

func TestTimeFormats(t *testing.T) {
	cases := []struct {
		format TimeFormat
		value  string
		want   int64
	}{
		{UnixMicro, "1500000", 1_500_000},
		{UnixMilli, "1500", 1_500_000},
		{UnixSec, "1.5", 1_500_000},
		{RFC3339, "2023-11-14T22:13:20Z", 1_700_000_000_000_000},
	}
	for _, c := range cases {
		in := "k,ts\n1," + c.value + "\n"
		s, err := NewScanner(strings.NewReader(in), Mapping{Key: "k", Time: "ts", TimeFormat: c.format})
		if err != nil {
			t.Fatalf("%s: %v", c.format, err)
		}
		rec, err := s.Next()
		if err != nil {
			t.Fatalf("%s: %v", c.format, err)
		}
		if rec.TS != c.want {
			t.Errorf("%s: ts = %d, want %d", c.format, rec.TS, c.want)
		}
		if _, err := s.Next(); err != io.EOF {
			t.Fatalf("%s: want EOF, got %v", c.format, err)
		}
	}
}

func TestMappingErrors(t *testing.T) {
	header := "k,ts,v\n"
	cases := map[string]Mapping{
		"missing key mapping":  {Time: "ts"},
		"missing time mapping": {Key: "k"},
		"unknown key column":   {Key: "nope", Time: "ts"},
		"unknown time column":  {Key: "k", Time: "nope"},
		"unknown value column": {Key: "k", Time: "ts", Value: "nope"},
		"unknown time format":  {Key: "k", Time: "ts", TimeFormat: "stardate"},
	}
	for name, m := range cases {
		if _, err := NewScanner(strings.NewReader(header), m); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestRowErrors(t *testing.T) {
	for name, in := range map[string]string{
		"bad timestamp": "k,ts,v\n1,notatime,2\n",
		"bad value":     "k,ts,v\n1,100,notanumber\n",
	} {
		s, err := NewScanner(strings.NewReader(in), Mapping{Key: "k", Time: "ts", Value: "v"})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Next(); err == nil {
			t.Errorf("%s: row accepted", name)
		} else if !strings.Contains(err.Error(), "line 2") {
			t.Errorf("%s: error lacks line number: %v", name, err)
		}
	}
}

func TestEmptyFile(t *testing.T) {
	if _, err := NewScanner(strings.NewReader(""), Mapping{Key: "k", Time: "ts"}); err == nil {
		t.Fatal("headerless input accepted")
	}
}
