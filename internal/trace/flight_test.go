package trace

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestFlightRecordAndSnapshot(t *testing.T) {
	f := NewFlight(8, "")
	f.Record(CompMemory, EvMemLevel, 1, 100)
	f.Record(CompSession, EvSlowEviction, 1, 0)
	f.Record(CompMemory, EvMemLevel, 2, 200)
	evs := f.Snapshot()
	if len(evs) != 3 {
		t.Fatalf("events = %d, want 3", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("not sorted by seq: %+v", evs)
		}
	}
	if evs[0].Component != "memory" || evs[0].Kind != "mem_level" || evs[0].A != 1 {
		t.Fatalf("first event = %+v", evs[0])
	}
	if evs[1].Component != "session" || evs[1].Kind != "slow_eviction" {
		t.Fatalf("second event = %+v", evs[1])
	}
	if f.Seq() != 3 {
		t.Fatalf("seq = %d", f.Seq())
	}
}

func TestFlightRingWrap(t *testing.T) {
	f := NewFlight(4, "")
	for i := uint64(0); i < 10; i++ {
		f.Record(CompWatermark, EvWatermarkAdvance, i, 0)
	}
	evs := f.Snapshot()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d, want 4", len(evs))
	}
	// The survivors are the newest 4 (payload a = 6..9).
	for i, ev := range evs {
		if want := uint64(6 + i); ev.A != want {
			t.Errorf("event %d: a = %d, want %d", i, ev.A, want)
		}
	}
}

func TestFlightNilSafe(t *testing.T) {
	var f *Flight
	f.Record(CompWAL, EvWALRotate, 1, 2)
	f.AutoDump("nothing")
	if f.Snapshot() != nil || f.Seq() != 0 {
		t.Fatal("nil flight not inert")
	}
	if err := f.DumpToFile("x", "y"); err != nil {
		t.Fatal(err)
	}
}

func TestFlightConcurrentRecord(t *testing.T) {
	// Many writers across components while readers snapshot; run under
	// -race. Every snapshotted event must be well-formed (nonzero seq,
	// known component/kind).
	f := NewFlight(32, "")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				f.Record(Component(w%int(numComponents)), EvWatermarkAdvance, uint64(i), uint64(w))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			for _, ev := range f.Snapshot() {
				if ev.Seq == 0 || ev.Component == "" || ev.Kind == "unknown" {
					t.Errorf("malformed event %+v", ev)
					return
				}
			}
		}
	}()
	wg.Wait()
	<-done
	if f.Seq() != 8*500 {
		t.Fatalf("seq = %d, want %d", f.Seq(), 8*500)
	}
}

func TestFlightDumpToFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "flight.json")
	f := NewFlight(8, path)
	f.Record(CompMemory, EvMemLevel, 1, 50)
	f.Record(CompSession, EvSlowEviction, 1, 0)
	if err := f.DumpToFile(path, "test"); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc FlightDoc
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("dump not valid JSON: %v", err)
	}
	if doc.Reason != "test" || len(doc.Events) != 2 {
		t.Fatalf("doc = %+v", doc)
	}
	if f.Dumps() != 1 {
		t.Fatalf("dumps = %d", f.Dumps())
	}
}

func TestFlightAutoDumpRateLimit(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "flight.json")
	f := NewFlight(8, path)
	f.Record(CompSession, EvSlowEviction, 1, 0)
	f.AutoDump("first")
	// Immediate second call is rate-limited away (1/s).
	f.AutoDump("second")
	deadline := time.Now().Add(2 * time.Second)
	for f.Dumps() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("auto-dump never landed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n := f.Dumps(); n != 1 {
		t.Fatalf("dumps = %d, want 1 (rate limit)", n)
	}
	var doc FlightDoc
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Reason != "first" {
		t.Fatalf("reason = %q", doc.Reason)
	}
}

func TestFlightWriteJSONEmpty(t *testing.T) {
	f := NewFlight(4, "")
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf, ""); err != nil {
		t.Fatal(err)
	}
	var doc FlightDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Events == nil || len(doc.Events) != 0 {
		t.Fatalf("empty doc events = %#v", doc.Events)
	}
}
