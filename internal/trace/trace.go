// Package trace is the request-path attribution layer: sampled per-request
// stage spans (where did a feature request's latency go — ingest funnel,
// queue wait, joiner dispatch, index probe, aggregation, emit, WAL append,
// or the TCP write) and an always-on flight recorder (flight.go) that keeps
// the seconds of control-plane history leading up to an eviction, stall, or
// memory-pressure transition.
//
// Both follow the repository's SWMR discipline. A span's stage slots are
// per-stage atomics written by whichever single goroutine owns the request
// at that pipeline position (session reader → ingest loop → joiner →
// writer), so the hot path takes no locks; the only multi-writer case is a
// broadcast engine accumulating probe/aggregate time from several joiners,
// which the atomic adds absorb. Sampling is deterministic — every Nth
// admitted request, from a shared counter — so a perf run is reproducible
// and no math/rand sits on the hot path.
package trace

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Stage indexes one pipeline position of a request span, in request order.
type Stage int

// The eight stages of a served request. WALAppend is the durability cost
// observed at the moment the request crossed the ingest loop (the most
// recent probe append's duration — base frames themselves are not logged),
// zero when no WAL is configured.
const (
	StageIngest    Stage = iota // session reader: admission + funnel enqueue
	StageQueueWait              // funnel wait: enqueue → ingest-loop dequeue
	StageDispatch               // engine dispatch: ring push → joiner pickup
	StageProbe                  // index/buffer probe: locating window tuples
	StageAggregate              // folding matched tuples into the aggregate
	StageEmit                   // join end → writer pickup (sink + out queue)
	StageWALAppend              // durability cost in the pipeline (see above)
	StageTCPWrite               // encoding + writing the result frame
	NumStages
)

// stageNames are the JSON/export keys, in Stage order.
var stageNames = [NumStages]string{
	"ingest", "queue_wait", "dispatch", "probe",
	"aggregate", "emit", "wal_append", "tcp_write",
}

// String returns the stage's export name.
func (s Stage) String() string { return stageNames[s] }

// epoch anchors the package's monotonic clock: stamps are nanoseconds since
// process start, comparable across goroutines and immune to wall-clock
// steps (time.Since reads Go's monotonic reading).
var epoch = time.Now()

// now returns monotonic nanoseconds since process start.
func now() int64 { return int64(time.Since(epoch)) }

// Span is one sampled request's stage breakdown. Stage slots are atomics:
// each pipeline position has a single writer, except broadcast engines
// where several joiners add probe/aggregate time concurrently.
type Span struct {
	// ReqID is the session-local (client-visible) request sequence — the
	// number oijsend prints, so client latency lines join server spans.
	ReqID uint64
	// Seq is the engine-global base sequence (set by the ingest loop
	// before the span is registered).
	Seq uint64
	// Key and TS echo the request tuple.
	Key uint64
	TS  int64
	// StartWallNS is the wall-clock admission time (UnixNano), for export.
	StartWallNS int64

	stages     [NumStages]atomic.Int64
	pushed     atomic.Int64 // monotonic ns at engine ring push
	joined     atomic.Int64 // monotonic ns when the join finished
	joiner     atomic.Int32
	dispatched atomic.Bool // first-joiner gate for broadcast engines
	dropped    atomic.Bool // abandoned before the result reached the wire
	registered bool        // owned by the tracer
}

// NewSpan starts a span at admission.
func NewSpan(reqID, key uint64, ts int64) *Span {
	sp := &Span{ReqID: reqID, Key: key, TS: ts, StartWallNS: time.Now().UnixNano()}
	sp.joiner.Store(-1)
	return sp
}

// Add accumulates d into a stage slot.
func (sp *Span) Add(st Stage, d time.Duration) {
	if sp == nil {
		return
	}
	sp.stages[st].Add(int64(d))
}

// StampPushed records the engine hand-off time; the dispatch stage measures
// from here to the joiner's pickup.
func (sp *Span) StampPushed() {
	if sp == nil {
		return
	}
	sp.pushed.Store(now())
}

// StampDispatched records the joiner pickup, closing the dispatch stage.
// Broadcast engines call it from every joiner; only the first closes the
// stage (the dispatch wait is one wall-clock interval, not a per-joiner
// cost), and that joiner is recorded as the span's owner.
func (sp *Span) StampDispatched(joiner int) {
	if sp == nil || !sp.dispatched.CompareAndSwap(false, true) {
		return
	}
	sp.joiner.Store(int32(joiner))
	if p := sp.pushed.Load(); p != 0 {
		sp.stages[StageDispatch].Store(now() - p)
	}
}

// StampJoined marks the end of join processing; the emit stage measures
// from here to the writer's pickup. With broadcast engines the last joiner
// to finish wins, which is exactly when the merged result can exist.
func (sp *Span) StampJoined() {
	if sp == nil {
		return
	}
	sp.joined.Store(now())
}

// StampWriterPickup closes the emit stage: join end → the session writer
// dequeued the result.
func (sp *Span) StampWriterPickup() {
	if sp == nil {
		return
	}
	if j := sp.joined.Load(); j != 0 {
		sp.stages[StageEmit].Store(now() - j)
	}
}

// Joiner returns the owning joiner index (-1 before dispatch).
func (sp *Span) Joiner() int { return int(sp.joiner.Load()) }

// Dropped reports whether the span was abandoned before its result reached
// the wire (eviction, deadline NACK, disconnect).
func (sp *Span) Dropped() bool { return sp.dropped.Load() }

// SpanSnap is one completed span's JSON rendering. All eight stage keys are
// always present, zero-valued stages included.
type SpanSnap struct {
	ReqID       uint64           `json:"req_id"`
	Seq         uint64           `json:"seq"`
	Key         uint64           `json:"key"`
	TS          int64            `json:"ts"`
	StartWallNS int64            `json:"start_wall_ns"`
	Joiner      int              `json:"joiner"`
	Complete    bool             `json:"complete"`
	TotalNS     int64            `json:"total_ns"`
	Stages      map[string]int64 `json:"stages_ns"`
}

// snap renders the span.
func (sp *Span) snap() SpanSnap {
	s := SpanSnap{
		ReqID:       sp.ReqID,
		Seq:         sp.Seq,
		Key:         sp.Key,
		TS:          sp.TS,
		StartWallNS: sp.StartWallNS,
		Joiner:      sp.Joiner(),
		Complete:    !sp.Dropped(),
		Stages:      make(map[string]int64, NumStages),
	}
	for i := Stage(0); i < NumStages; i++ {
		d := sp.stages[i].Load()
		s.Stages[stageNames[i]] = d
		s.TotalNS += d
	}
	return s
}

// Tracer owns sampling and span lifecycle: a deterministic 1-in-N sampler,
// the active-span map (keyed by engine-global base sequence, how joiners
// find their span), and a bounded ring of completed spans for /tracez.
type Tracer struct {
	sampleN atomic.Uint64 // live-adjustable (controller under pressure)
	counter atomic.Uint64
	active  sync.Map // engine seq -> *Span
	nActive atomic.Int64

	mu        sync.Mutex
	ring      []*Span // completed, oldest overwritten first
	next      int
	completed uint64
	dropped   uint64
}

// NewTracer builds a tracer sampling every sampleN-th request into a ring
// of ringSize completed spans. sampleN <= 0 disables sampling entirely
// (every call becomes a cheap branch); ringSize <= 0 defaults to 256.
func NewTracer(sampleN, ringSize int) *Tracer {
	if ringSize <= 0 {
		ringSize = 256
	}
	t := &Tracer{ring: make([]*Span, 0, ringSize)}
	if sampleN > 0 {
		t.sampleN.Store(uint64(sampleN))
	}
	return t
}

// Enabled reports whether any request can be sampled. Nil-safe.
func (t *Tracer) Enabled() bool { return t != nil && t.sampleN.Load() > 0 }

// SampleN returns the current 1-in-N rate (0 when disabled).
func (t *Tracer) SampleN() int {
	if t == nil {
		return 0
	}
	return int(t.sampleN.Load())
}

// SetSampleN retunes the 1-in-N rate live (the controller coarsens
// sampling under pressure and restores it on recovery). n <= 0 disables
// sampling. Safe from any goroutine; in-flight spans finish normally.
func (t *Tracer) SetSampleN(n int) {
	if t == nil {
		return
	}
	if n < 0 {
		n = 0
	}
	t.sampleN.Store(uint64(n))
}

// Sample decides whether the next admitted request is traced: true for
// every sampleN-th call, from a shared atomic counter — deterministic, no
// PRNG. With sampling off it is one branch.
func (t *Tracer) Sample() bool {
	if t == nil {
		return false
	}
	n := t.sampleN.Load()
	if n == 0 {
		return false
	}
	return t.counter.Add(1)%n == 1%n
}

// Completed returns the number of retired spans (no ring copy).
func (t *Tracer) Completed() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.completed
}

// Dropped returns the number of retired spans that were abandoned.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Active returns the number of in-flight sampled spans.
func (t *Tracer) Active() int64 {
	if t == nil {
		return 0
	}
	return t.nActive.Load()
}

// Register publishes a span under its engine-global sequence so joiners
// can find it. Call after Span.Seq is set.
func (t *Tracer) Register(sp *Span) {
	sp.registered = true
	t.active.Store(sp.Seq, sp)
	t.nActive.Add(1)
}

// Lookup returns the active span for a base sequence, or nil. With
// sampling off this is one branch; with sampling on but the request
// unsampled, one map probe.
func (t *Tracer) Lookup(seq uint64) *Span {
	if !t.Enabled() {
		return nil
	}
	v, ok := t.active.Load(seq)
	if !ok {
		return nil
	}
	return v.(*Span)
}

// Complete retires a span into the bounded ring (oldest evicted first).
func (t *Tracer) Complete(sp *Span) {
	if t == nil || sp == nil {
		return
	}
	if sp.registered {
		t.active.Delete(sp.Seq)
		t.nActive.Add(-1)
	}
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, sp)
	} else {
		t.ring[t.next] = sp
		t.next = (t.next + 1) % len(t.ring)
	}
	t.completed++
	if sp.Dropped() {
		t.dropped++
	}
	t.mu.Unlock()
}

// Abandon retires a span whose result will never reach the wire.
func (t *Tracer) Abandon(sp *Span) {
	if t == nil || sp == nil {
		return
	}
	sp.dropped.Store(true)
	t.Complete(sp)
}

// Snapshot returns completed spans oldest-first.
func (t *Tracer) Snapshot() []SpanSnap {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := make([]*Span, 0, len(t.ring))
	if len(t.ring) == cap(t.ring) {
		spans = append(spans, t.ring[t.next:]...)
		spans = append(spans, t.ring[:t.next]...)
	} else {
		spans = append(spans, t.ring...)
	}
	t.mu.Unlock()
	out := make([]SpanSnap, len(spans))
	for i, sp := range spans {
		out[i] = sp.snap()
	}
	return out
}

// TracezDoc is the /tracez JSON document.
type TracezDoc struct {
	SampleEvery int        `json:"sample_every"`
	ActiveSpans int64      `json:"active_spans"`
	Completed   uint64     `json:"completed_spans"`
	Dropped     uint64     `json:"dropped_spans"`
	Spans       []SpanSnap `json:"spans"`
}

// Doc assembles the /tracez document.
func (t *Tracer) Doc() TracezDoc {
	d := TracezDoc{SampleEvery: t.SampleN(), Spans: t.Snapshot()}
	if t != nil {
		d.ActiveSpans = t.nActive.Load()
		t.mu.Lock()
		d.Completed = t.completed
		d.Dropped = t.dropped
		t.mu.Unlock()
	}
	if d.Spans == nil {
		d.Spans = []SpanSnap{}
	}
	return d
}

// WriteTracez renders the /tracez JSON document.
func (t *Tracer) WriteTracez(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.Doc())
}

// chromeEvent is one Chrome trace-event ("X" = complete event). Times are
// in microseconds, per the format.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  uint64         `json:"tid"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders completed spans in the Chrome trace-event
// format (load into speedscope, Perfetto, or chrome://tracing). Each
// request is one track (tid = request id); stages are laid out
// back-to-back in pipeline order from the span's admission time.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	type doc struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}
	d := doc{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	for _, s := range t.Snapshot() {
		off := float64(s.StartWallNS) / 1e3
		for i := Stage(0); i < NumStages; i++ {
			dur := float64(s.Stages[stageNames[i]]) / 1e3
			d.TraceEvents = append(d.TraceEvents, chromeEvent{
				Name: stageNames[i], Cat: "request", Ph: "X",
				PID: 1, TID: s.ReqID, TS: off, Dur: dur,
				Args: map[string]any{
					"seq": s.Seq, "key": s.Key, "joiner": s.Joiner, "complete": s.Complete,
				},
			})
			off += dur
		}
	}
	return json.NewEncoder(w).Encode(d)
}
