package trace

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestSamplingDeterministic(t *testing.T) {
	for _, tc := range []struct {
		n    int
		want []bool // decisions for the first 6 requests
	}{
		{1, []bool{true, true, true, true, true, true}},
		{2, []bool{true, false, true, false, true, false}},
		{3, []bool{true, false, false, true, false, false}},
	} {
		tr := NewTracer(tc.n, 8)
		for i, want := range tc.want {
			if got := tr.Sample(); got != want {
				t.Errorf("N=%d request %d: sampled=%v, want %v", tc.n, i, got, want)
			}
		}
	}
}

func TestSamplingDisabled(t *testing.T) {
	for _, tr := range []*Tracer{nil, NewTracer(0, 8), NewTracer(-1, 8)} {
		if tr.Enabled() {
			t.Fatal("disabled tracer reports enabled")
		}
		if tr != nil && tr.Sample() {
			t.Fatal("disabled tracer sampled a request")
		}
		if tr.Lookup(0) != nil {
			t.Fatal("disabled tracer returned a span")
		}
	}
}

func TestSpanLifecycle(t *testing.T) {
	tr := NewTracer(1, 8)
	sp := NewSpan(7, 42, 1000)
	sp.Add(StageIngest, 5*time.Microsecond)
	sp.Add(StageQueueWait, 3*time.Microsecond)
	sp.Seq = 0 // engine-global sequences start at 0
	tr.Register(sp)
	if tr.Lookup(0) != sp {
		t.Fatal("Lookup missed the registered span")
	}
	sp.StampPushed()
	sp.StampDispatched(1)
	sp.Add(StageProbe, time.Microsecond)
	sp.Add(StageAggregate, time.Microsecond)
	sp.StampJoined()
	sp.StampWriterPickup()
	sp.Add(StageWALAppend, 0)
	sp.Add(StageTCPWrite, 2*time.Microsecond)
	tr.Complete(sp)
	if tr.Lookup(0) != nil {
		t.Fatal("completed span still active")
	}
	doc := tr.Doc()
	if doc.Completed != 1 || doc.Dropped != 0 || doc.ActiveSpans != 0 {
		t.Fatalf("doc counters = %+v", doc)
	}
	if len(doc.Spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(doc.Spans))
	}
	s := doc.Spans[0]
	if !s.Complete || s.Joiner != 1 || s.ReqID != 7 || s.Key != 42 {
		t.Fatalf("span snap = %+v", s)
	}
	if len(s.Stages) != int(NumStages) {
		t.Fatalf("stage keys = %d, want %d", len(s.Stages), NumStages)
	}
	for _, name := range []string{"ingest", "queue_wait", "dispatch", "probe", "aggregate", "emit", "wal_append", "tcp_write"} {
		if _, ok := s.Stages[name]; !ok {
			t.Errorf("stage %q missing from snapshot", name)
		}
	}
	if s.Stages["ingest"] != int64(5*time.Microsecond) {
		t.Errorf("ingest = %d", s.Stages["ingest"])
	}
}

// TestAbandonUnregistered covers the zero-seq collision: an unregistered
// span's Seq is 0, and so is the first real request's engine sequence —
// abandoning the former must not delete the latter from the active map.
func TestAbandonUnregistered(t *testing.T) {
	tr := NewTracer(1, 8)
	real := NewSpan(1, 1, 1)
	real.Seq = 0
	tr.Register(real)

	rejected := NewSpan(2, 2, 2) // never got a sequence, never registered
	tr.Abandon(rejected)

	if tr.Lookup(0) != real {
		t.Fatal("abandoning an unregistered span evicted an active one")
	}
	doc := tr.Doc()
	if doc.Dropped != 1 || doc.ActiveSpans != 1 {
		t.Fatalf("doc = %+v", doc)
	}
}

func TestDispatchStampOnce(t *testing.T) {
	sp := NewSpan(1, 1, 1)
	sp.StampPushed()
	sp.StampDispatched(3)
	first := sp.stages[StageDispatch].Load()
	time.Sleep(time.Millisecond)
	sp.StampDispatched(5) // broadcast engine: second joiner must not win
	if sp.Joiner() != 3 {
		t.Fatalf("joiner = %d, want 3", sp.Joiner())
	}
	if got := sp.stages[StageDispatch].Load(); got != first {
		t.Fatalf("dispatch restamped: %d -> %d", first, got)
	}
}

func TestRingEviction(t *testing.T) {
	tr := NewTracer(1, 4)
	for i := uint64(0); i < 10; i++ {
		sp := NewSpan(i, i, int64(i))
		sp.Seq = i
		tr.Register(sp)
		tr.Complete(sp)
	}
	snaps := tr.Snapshot()
	if len(snaps) != 4 {
		t.Fatalf("ring holds %d, want 4", len(snaps))
	}
	for i, s := range snaps {
		if want := uint64(6 + i); s.ReqID != want {
			t.Errorf("ring[%d].ReqID = %d, want %d (oldest-first)", i, s.ReqID, want)
		}
	}
}

func TestNilSpanSafe(t *testing.T) {
	var sp *Span
	sp.Add(StageProbe, time.Second)
	sp.StampPushed()
	sp.StampDispatched(0)
	sp.StampJoined()
	sp.StampWriterPickup()
	var tr *Tracer
	tr.Complete(nil)
	tr.Abandon(nil)
	if tr.Snapshot() != nil {
		t.Fatal("nil tracer snapshot not nil")
	}
}

func TestWriteTracezAndChrome(t *testing.T) {
	tr := NewTracer(2, 8)
	sp := NewSpan(9, 5, 500)
	sp.Seq = 3
	sp.Add(StageProbe, 10*time.Microsecond)
	tr.Register(sp)
	tr.Complete(sp)

	var buf bytes.Buffer
	if err := tr.WriteTracez(&buf); err != nil {
		t.Fatal(err)
	}
	var doc TracezDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("tracez not valid JSON: %v", err)
	}
	if doc.SampleEvery != 2 || len(doc.Spans) != 1 {
		t.Fatalf("doc = %+v", doc)
	}

	buf.Reset()
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var chrome struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TID  uint64  `json:"tid"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &chrome); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v", err)
	}
	if len(chrome.TraceEvents) != int(NumStages) {
		t.Fatalf("events = %d, want %d", len(chrome.TraceEvents), NumStages)
	}
	for _, ev := range chrome.TraceEvents {
		if ev.Ph != "X" || ev.TID != 9 {
			t.Fatalf("event = %+v", ev)
		}
	}
}

func TestConcurrentSpanStamps(t *testing.T) {
	// Broadcast-engine shape: many joiners hammer one span while a reader
	// snapshots. Run under -race.
	tr := NewTracer(1, 16)
	sp := NewSpan(1, 1, 1)
	sp.Seq = 0
	tr.Register(sp)
	sp.StampPushed()
	var wg sync.WaitGroup
	for j := 0; j < 8; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			sp.StampDispatched(j)
			sp.Add(StageProbe, time.Microsecond)
			sp.Add(StageAggregate, time.Microsecond)
			sp.StampJoined()
		}(j)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			tr.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	tr.Complete(sp)
	s := tr.Snapshot()[0]
	if s.Stages["probe"] != int64(8*time.Microsecond) {
		t.Fatalf("probe accumulation = %d, want %d", s.Stages["probe"], 8*time.Microsecond)
	}
	if s.Joiner < 0 || s.Joiner > 7 {
		t.Fatalf("joiner = %d", s.Joiner)
	}
}
