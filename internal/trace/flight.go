package trace

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Component indexes one flight-recorder ring. Each control-plane subsystem
// gets its own fixed ring so a chatty component (watermarks) cannot wash
// out a rare one (evictions).
type Component int

// Flight-recorder components.
const (
	CompWatermark Component = iota
	CompEpoch
	CompAdmission
	CompMemory
	CompSession
	CompStall
	CompWAL
	CompBreaker
	CompSLO
	CompControl
	CompRepl
	CompProf
	numComponents
)

var componentNames = [numComponents]string{
	"watermark", "epoch", "admission", "memory",
	"session", "stall", "wal", "breaker", "slo", "control", "repl", "prof",
}

// String returns the component's export name.
func (c Component) String() string { return componentNames[c] }

// EventKind tags one flight-recorder event.
type EventKind int

// Flight-recorder event kinds.
const (
	EvWatermarkAdvance EventKind = iota + 1 // a=new watermark, b=tuples seen
	EvEpoch                                 // a=epoch index, b=watermark lag (ns)
	EvAdmissionShed                         // a=total sheds
	EvAdmissionReject                       // a=total rejects
	EvDeadlineNack                          // a=request seq, b=queue age (ns)
	EvMemLevel                              // a=new level, b=buffered probes
	EvSlowEviction                          // a=total evictions
	EvStallDetected                         // a=stalled joiners, b=max stall (ns)
	EvStallCleared                          // a=stalled joiners (now 0)
	EvWALRotate                             // a=segment bytes at rotation
	EvWALSalvage                            // a=frames cut by sanitize
	EvWALRecovered                          // a=frames recovered, b=frames skipped
	EvWALError                              // a=consecutive errors
	EvBreakerOpen                           // a=consecutive failures
	EvBreakerHalfOpen                       //
	EvBreakerClosed                         //
	EvSLOUnhealthy                          // a=breached-dimension bitmask, b=epoch index
	EvSLORecovered                          // a=unhealthy duration (ns), b=epoch index
	EvCtlDecision                           // a=rule id, b=old<<32|new (actuator values)
	EvCtlFreeze                             // a=1 frozen / 0 unfrozen, b=epoch index
	EvReplConnect                           // a=peer slot position, b=local commit
	EvReplCaughtUp                          // a=applied slot, b=commit slot
	EvReplLagExceeded                       // a=lag bytes, b=configured max
	EvReplPromote                           // a=new epoch, b=applied slot at promotion
	EvReplFenced                            // a=fencing epoch, b=own (superseded) epoch
	EvProfCapture                           // a=profile ring seq, b=profile bytes
)

var eventKindNames = map[EventKind]string{
	EvWatermarkAdvance: "watermark_advance",
	EvEpoch:            "epoch",
	EvAdmissionShed:    "admission_shed",
	EvAdmissionReject:  "admission_reject",
	EvDeadlineNack:     "deadline_nack",
	EvMemLevel:         "mem_level",
	EvSlowEviction:     "slow_eviction",
	EvStallDetected:    "stall_detected",
	EvStallCleared:     "stall_cleared",
	EvWALRotate:        "wal_rotate",
	EvWALSalvage:       "wal_salvage",
	EvWALRecovered:     "wal_recovered",
	EvWALError:         "wal_error",
	EvBreakerOpen:      "breaker_open",
	EvBreakerHalfOpen:  "breaker_half_open",
	EvBreakerClosed:    "breaker_closed",
	EvSLOUnhealthy:     "slo_unhealthy",
	EvSLORecovered:     "slo_recovered",
	EvCtlDecision:      "ctl_decision",
	EvCtlFreeze:        "ctl_freeze",
	EvReplConnect:      "repl_connect",
	EvReplCaughtUp:     "repl_caught_up",
	EvReplLagExceeded:  "repl_lag_exceeded",
	EvReplPromote:      "repl_promote",
	EvReplFenced:       "repl_fenced",
	EvProfCapture:      "prof_capture",
}

// String returns the kind's export name.
func (k EventKind) String() string {
	if s, ok := eventKindNames[k]; ok {
		return s
	}
	return "unknown"
}

// eventSlot is one ring entry, all-atomic so writers never lock. The
// publish protocol is: claim an index, invalidate (seq=0), write payload,
// publish seq last. Readers skip seq==0 slots; a reader racing a wrap can
// observe a slot whose payload is mid-rewrite under a stale seq — a rare
// single-event glitch at ring-wrap, acceptable for a forensic buffer and
// far cheaper than seqlock retries on every record.
type eventSlot struct {
	seq  atomic.Uint64 // global order, 0 = empty/being written
	wall atomic.Int64  // UnixNano
	kind atomic.Int64
	a    atomic.Uint64
	b    atomic.Uint64
}

// eventRing is one component's fixed ring.
type eventRing struct {
	next  atomic.Uint64
	slots []eventSlot
}

// Event is one recorded flight event, decoded for export.
type Event struct {
	Seq       uint64 `json:"seq"`
	WallNS    int64  `json:"wall_ns"`
	Component string `json:"component"`
	Kind      string `json:"kind"`
	A         uint64 `json:"a"`
	B         uint64 `json:"b"`
}

// Flight is the always-on flight recorder: per-component lock-free event
// rings stitched together by a global sequence. Recording is a few atomic
// stores; a nil *Flight is a valid no-op recorder so call sites need no
// guards.
type Flight struct {
	gseq  atomic.Uint64
	rings [numComponents]eventRing

	autoPath string
	lastDump atomic.Int64 // UnixNano of last auto-dump, rate limiter
	dumpMu   sync.Mutex   // serializes file writes
	dumps    atomic.Uint64
}

// NewFlight builds a recorder with ringSize slots per component (default
// 512 when <= 0). autoDumpPath, when non-empty, is where incident dumps
// land (see AutoDump).
func NewFlight(ringSize int, autoDumpPath string) *Flight {
	if ringSize <= 0 {
		ringSize = 512
	}
	f := &Flight{autoPath: autoDumpPath}
	for i := range f.rings {
		f.rings[i].slots = make([]eventSlot, ringSize)
	}
	return f
}

// Record appends an event to a component's ring. Safe from any goroutine,
// no locks; nil receiver is a no-op.
func (f *Flight) Record(c Component, k EventKind, a, b uint64) {
	if f == nil {
		return
	}
	gs := f.gseq.Add(1)
	r := &f.rings[c]
	slot := &r.slots[(r.next.Add(1)-1)%uint64(len(r.slots))]
	slot.seq.Store(0) // invalidate while the payload is torn
	slot.wall.Store(time.Now().UnixNano())
	slot.kind.Store(int64(k))
	slot.a.Store(a)
	slot.b.Store(b)
	slot.seq.Store(gs) // publish
}

// Seq returns the number of events recorded so far.
func (f *Flight) Seq() uint64 {
	if f == nil {
		return 0
	}
	return f.gseq.Load()
}

// Dumps returns how many incident dumps have been written.
func (f *Flight) Dumps() uint64 {
	if f == nil {
		return 0
	}
	return f.dumps.Load()
}

// Snapshot collects every published event across all rings, sorted by
// global sequence (the interleaved control-plane timeline).
func (f *Flight) Snapshot() []Event {
	if f == nil {
		return nil
	}
	var out []Event
	for c := Component(0); c < numComponents; c++ {
		for i := range f.rings[c].slots {
			slot := &f.rings[c].slots[i]
			seq := slot.seq.Load()
			if seq == 0 {
				continue
			}
			out = append(out, Event{
				Seq:       seq,
				WallNS:    slot.wall.Load(),
				Component: c.String(),
				Kind:      EventKind(slot.kind.Load()).String(),
				A:         slot.a.Load(),
				B:         slot.b.Load(),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// FlightDoc is the /debug/flightrecorder JSON document.
type FlightDoc struct {
	Reason     string  `json:"reason,omitempty"`
	DumpedAtNS int64   `json:"dumped_at_ns"`
	TotalSeq   uint64  `json:"total_seq"`
	Dumps      uint64  `json:"dumps"`
	Events     []Event `json:"events"`
}

// WriteJSON renders the full event timeline.
func (f *Flight) WriteJSON(w io.Writer, reason string) error {
	d := FlightDoc{
		Reason:     reason,
		DumpedAtNS: time.Now().UnixNano(),
		TotalSeq:   f.Seq(),
		Dumps:      f.Dumps(),
		Events:     f.Snapshot(),
	}
	if d.Events == nil {
		d.Events = []Event{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// DumpToFile writes the timeline to path via temp-file + rename, so a
// concurrent reader never sees a torn dump.
func (f *Flight) DumpToFile(path, reason string) error {
	if f == nil || path == "" {
		return nil
	}
	f.dumpMu.Lock()
	defer f.dumpMu.Unlock()
	tmp, err := os.CreateTemp(filepath.Dir(path), ".flight-*")
	if err != nil {
		return err
	}
	werr := f.WriteJSON(tmp, reason)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return werr
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	f.dumps.Add(1)
	return nil
}

// AutoDump writes an incident dump to the configured path, asynchronously
// and rate-limited to one per second — incident paths (eviction, stall,
// memory pressure) call it inline and must not block. No-op when no dump
// path is configured.
func (f *Flight) AutoDump(reason string) {
	if f == nil || f.autoPath == "" {
		return
	}
	now := time.Now().UnixNano()
	last := f.lastDump.Load()
	if now-last < int64(time.Second) || !f.lastDump.CompareAndSwap(last, now) {
		return
	}
	go func() { _ = f.DumpToFile(f.autoPath, reason) }()
}
