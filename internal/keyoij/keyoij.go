// Package keyoij implements Key-OIJ, the key-partitioned parallel online
// interval join the paper profiles in §IV — the design used by Apache
// Flink's interval join and, until this paper, the only parallel OIJ
// algorithm.
//
// Every tuple is routed to a statically chosen joiner by its key hash; each
// joiner buffers probe tuples per key in arrival order (unsorted) and, for
// every base tuple, performs a full scan over the key's buffer to filter
// the tuples inside the relative window. The three pathologies the paper
// attributes to this design fall out directly:
//
//   - out-of-order handling: the unsorted buffer must retain lateness-worth
//     of extra tuples and every join visits all of them (Figs. 7, 11);
//   - static key partition: at most u joiners are useful and skewed keys
//     skew joiners (Figs. 4a, 8, 13);
//   - no sharing between overlapping windows: every window re-aggregates
//     from scratch (Figs. 9, 16).
package keyoij

import (
	"sync/atomic"
	"time"

	"oij/internal/agg"
	"oij/internal/engine"
	"oij/internal/trace"
	"oij/internal/tuple"
	"oij/internal/watermark"
)

// Engine is the Key-OIJ implementation of engine.Engine.
type Engine struct {
	cfg   engine.Config
	tr    *engine.Transport
	sink  engine.Sink
	lrec  engine.LatencyRecorder // non-nil if sink records latencies
	srec  engine.StageRecorder   // non-nil if sink hands out trace spans
	arec  engine.AllocRecorder   // non-nil if sink accounts allocations
	stats *engine.Stats
	js    []*joiner
}

// New builds a Key-OIJ engine.
func New(cfg engine.Config, sink engine.Sink) *Engine {
	cfg = cfg.WithDefaults()
	if cfg.Instrument {
		// The breakdown's "other" category is total busy time minus
		// lookup and match, so instrumented runs need busy tracking.
		cfg.TrackBusy = true
	}
	e := &Engine{cfg: cfg, tr: engine.NewTransport(cfg), sink: sink, stats: engine.NewStats(cfg.Joiners)}
	e.lrec, _ = sink.(engine.LatencyRecorder)
	e.srec, _ = sink.(engine.StageRecorder)
	e.arec, _ = sink.(engine.AllocRecorder)
	e.js = make([]*joiner, cfg.Joiners)
	for i := range e.js {
		e.js[i] = newJoiner(e, i)
	}
	return e
}

// Name implements engine.Engine.
func (e *Engine) Name() string { return "key-oij" }

// Start implements engine.Engine.
func (e *Engine) Start() {
	for i, j := range e.js {
		var busy *atomic.Int64
		if e.cfg.TrackBusy {
			busy = &e.stats.Busy[i]
		}
		e.tr.Go(i, engine.JoinerHooks{OnTuple: j.onTuple, OnWatermark: j.onWatermark, Busy: busy})
	}
}

// Ingest implements engine.Engine: static key-hash routing.
func (e *Engine) Ingest(t tuple.Tuple) {
	e.tr.Observe(t.TS)
	e.tr.Push(int(engine.HashKey(t.Key)%uint64(e.cfg.Joiners)), t)
}

// Drain implements engine.Engine.
func (e *Engine) Drain() {
	e.tr.Finish()
	var evicted int64
	for _, j := range e.js {
		evicted += j.evicted
	}
	e.stats.Evicted.Store(evicted)
	if e.cfg.Instrument {
		engine.FillOther(e.stats)
	}
}

// Stats implements engine.Engine.
func (e *Engine) Stats() *engine.Stats { return e.stats }

// Heartbeat implements engine.Engine.
func (e *Engine) Heartbeat() { e.tr.Heartbeat() }

// QueueDepths implements engine.Introspector.
func (e *Engine) QueueDepths() []int { return e.tr.QueueDepths() }

// Watermark implements engine.Introspector.
func (e *Engine) Watermark() tuple.Time { return e.tr.Watermark() }

// MaxEventTS implements engine.Introspector.
func (e *Engine) MaxEventTS() tuple.Time { return e.tr.MaxEventTS() }

// Stalls implements engine.Introspector.
func (e *Engine) Stalls() engine.StallSnapshot { return e.tr.Stalls() }

// joiner is one Key-OIJ worker: per-key unsorted probe buffers plus, in
// OnWatermark mode, a heap of base tuples awaiting window completion.
type joiner struct {
	e  *Engine
	id int

	buffers   map[tuple.Key][]tuple.Tuple
	pending   engine.PendingHeap
	wm        tuple.Time
	lastSweep tuple.Time
	evicted   int64
	published int64 // evictions already mirrored into stats.Evicted
	scratch   []engine.TSVal
}

func newJoiner(e *Engine, id int) *joiner {
	return &joiner{e: e, id: id, buffers: make(map[tuple.Key][]tuple.Tuple), wm: watermark.MinTime, lastSweep: watermark.MinTime}
}

// evictBound returns the timestamp below which a probe tuple can no longer
// match any base tuple the joiner may still process at watermark wm (see
// package engine for the per-mode derivation).
func (j *joiner) evictBound(wm tuple.Time) tuple.Time {
	if wm == watermark.MinTime {
		return watermark.MinTime
	}
	b := wm - j.e.cfg.Window.Pre
	if j.e.cfg.Mode == engine.OnWatermark {
		b -= j.e.cfg.Window.Fol
	}
	return b
}

func (j *joiner) onTuple(t tuple.Tuple) {
	j.e.stats.Processed[j.id].Add(1)
	if t.Side == tuple.Probe {
		buf := j.buffers[t.Key]
		before := cap(buf)
		buf = append(buf, t)
		j.buffers[t.Key] = buf
		engine.CountSliceGrowth(j.e.arec, trace.StageIngest, before, cap(buf), engine.TupleAllocBytes)
		return
	}
	if j.e.cfg.Mode == engine.OnWatermark {
		j.pending.Push(t)
		return
	}
	j.join(t)
}

func (j *joiner) onWatermark(wm tuple.Time) {
	// Equal watermarks are heartbeats: re-run finalization (the global
	// minimum may have advanced) but skip stale (smaller) values.
	if wm < j.wm {
		return
	}
	j.wm = wm
	if j.e.cfg.Mode == engine.OnWatermark {
		// Finalize complete windows before evicting anything they need.
		for {
			b, ok := j.pending.PopIfBefore(wm - j.e.cfg.Window.Fol)
			if !ok {
				break
			}
			j.join(b)
		}
	}
	// Periodic full sweep to reclaim idle keys' buffers; keys that see
	// joins are compacted inline during scans.
	horizon := j.e.cfg.Window.Len() + j.e.cfg.Window.Lateness
	if j.lastSweep == watermark.MinTime || wm-j.lastSweep > horizon/2+1 {
		j.lastSweep = wm
		bound := j.evictBound(wm)
		for k, buf := range j.buffers {
			j.buffers[k] = j.compact(buf, bound)
		}
	}
	// Mirror evictions into the shared counter at watermark cadence, so
	// the serving layer's memory guard reads live buffered state without a
	// per-tuple atomic on the join path.
	if d := j.evicted - j.published; d > 0 {
		j.published = j.evicted
		j.e.stats.Evicted.Add(d)
	}
}

// compact drops expired tuples from a buffer in place.
func (j *joiner) compact(buf []tuple.Tuple, bound tuple.Time) []tuple.Tuple {
	keep := buf[:0]
	for _, t := range buf {
		if t.TS >= bound {
			keep = append(keep, t)
		} else {
			j.evicted++
		}
	}
	return keep
}

// join performs the full-scan interval join for one base tuple: visit every
// buffered tuple of the key, filter by the relative window, aggregate, and
// emit. Expired tuples encountered during the scan are compacted away (the
// scan already paid for visiting them).
func (j *joiner) join(base tuple.Tuple) {
	lo, hi := j.e.cfg.Window.Bounds(base.TS)
	bound := j.evictBound(j.wm)
	if j.e.cfg.Mode == engine.OnWatermark && base.TS-j.e.cfg.Window.Pre < bound {
		// Finalization pops pending bases in ascending timestamp order,
		// so nothing below this base's own window start is needed again
		// — but the watermark-derived bound can overshoot it while a
		// batch of bases finalizes at one watermark. Clamp so the
		// inline compaction never drops probes a later pending base
		// (with a larger timestamp) still matches.
		bound = base.TS - j.e.cfg.Window.Pre
	}
	buf := j.buffers[base.Key]
	st := agg.NewState(j.e.cfg.Agg)
	engine.CountStateAlloc(j.e.arec, trace.StageAggregate)

	var sp *trace.Span
	if j.e.srec != nil {
		sp = j.e.srec.SpanFor(base.Seq)
	}
	sp.StampDispatched(j.id)

	if j.e.cfg.Instrument || sp != nil {
		// Two-pass so lookup (filtering the full buffer) and match
		// (folding in-window values) are timed separately, mirroring
		// the paper's Fig. 6 categories. Sampled spans take the same
		// path so probe and aggregate stages get distinct timings, but
		// only instrumented runs write the shared breakdown stats.
		t0 := time.Now()
		scratchCap := cap(j.scratch)
		j.scratch = j.scratch[:0]
		keep := buf[:0]
		for _, t := range buf {
			if t.TS >= lo && t.TS <= hi {
				j.scratch = append(j.scratch, engine.TSVal{TS: t.TS, Val: t.Val})
			}
			if t.TS >= bound {
				keep = append(keep, t)
			} else {
				j.evicted++
			}
		}
		j.buffers[base.Key] = keep
		engine.CountSliceGrowth(j.e.arec, trace.StageProbe, scratchCap, cap(j.scratch), engine.TSValAllocBytes)
		t1 := time.Now()
		for _, p := range j.scratch {
			st.AddAt(p.TS, p.Val)
		}
		t2 := time.Now()
		if j.e.cfg.Instrument {
			bd := &j.e.stats.Breakdown[j.id]
			bd.Lookup += t1.Sub(t0)
			bd.Match += t2.Sub(t1)
			j.e.stats.Effect[j.id].Observe(int64(len(j.scratch)), int64(len(buf)))
		}
		sp.Add(trace.StageProbe, t1.Sub(t0))
		sp.Add(trace.StageAggregate, t2.Sub(t1))
	} else {
		keep := buf[:0]
		for _, t := range buf {
			if t.TS >= lo && t.TS <= hi {
				st.AddAt(t.TS, t.Val)
			}
			if t.TS >= bound {
				keep = append(keep, t)
			} else {
				j.evicted++
			}
		}
		j.buffers[base.Key] = keep
	}

	j.emit(base, st, sp)
}

func (j *joiner) emit(base tuple.Tuple, st agg.State, sp *trace.Span) {
	sp.StampJoined()
	j.e.stats.Results.Add(1)
	j.e.sink.Emit(j.id, tuple.Result{
		BaseTS:  base.TS,
		Key:     base.Key,
		BaseSeq: base.Seq,
		Agg:     st.Value(),
		Matches: st.Count(),
	})
	if j.e.lrec != nil && !base.Arrival.IsZero() {
		j.e.lrec.Record(j.id, time.Since(base.Arrival))
	}
}
