package keyoij

import (
	"math"
	"testing"

	"oij/internal/agg"
	"oij/internal/engine"
	"oij/internal/refjoin"
	"oij/internal/tuple"
	"oij/internal/window"
	"oij/internal/workload"
)

func testCfg(joiners int, mode engine.EmitMode) engine.Config {
	return engine.Config{
		Joiners: joiners,
		Window:  window.Spec{Pre: 1000, Fol: 0, Lateness: 200},
		Agg:     agg.Sum,
		Mode:    mode,
	}
}

func replay(e engine.Engine, tuples []tuple.Tuple) {
	e.Start()
	for _, t := range tuples {
		e.Ingest(t)
	}
	e.Drain()
}

func genStream(t *testing.T, n, keys int) []tuple.Tuple {
	t.Helper()
	wl := workload.Config{
		Name: "keyoij-test", N: n, EventRate: 1_000_000, Keys: keys,
		BaseShare: 0.5, Window: window.Spec{Pre: 1000, Fol: 0, Lateness: 200},
		Disorder: 200, Seed: 21,
	}
	ts, err := wl.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

// TestStaticRouting: every tuple of one key lands on the same joiner.
func TestStaticRouting(t *testing.T) {
	sink := &engine.CollectSink{}
	e := New(testCfg(4, engine.OnArrival), sink)
	stream := make([]tuple.Tuple, 0, 1000)
	for i := 0; i < 1000; i++ {
		stream = append(stream, tuple.Tuple{TS: tuple.Time(i), Key: 42, Side: tuple.Probe, Seq: uint64(i)})
	}
	replay(e, stream)
	busyJoiners := 0
	for i := range e.Stats().Processed {
		if e.Stats().Processed[i].Load() > 0 {
			busyJoiners++
		}
	}
	if busyJoiners != 1 {
		t.Fatalf("single key spread over %d joiners", busyJoiners)
	}
}

// TestEvictionBoundsBuffers: with eviction running, buffered tuples stay
// near the retention horizon instead of growing with the stream.
func TestEvictionBoundsBuffers(t *testing.T) {
	stream := genStream(t, 120_000, 4)
	sink := &engine.CountSink{}
	e := New(testCfg(2, engine.OnArrival), sink)
	replay(e, stream)

	if e.Stats().Evicted.Load() == 0 {
		t.Fatal("nothing evicted over a long stream")
	}
	// Retention is Pre+Lateness = 1200us at ~0.5M probes/s/..; remaining
	// buffered tuples must be far below the probe count.
	var buffered int
	for _, j := range e.js {
		for _, buf := range j.buffers {
			buffered += len(buf)
		}
	}
	probes := len(stream) - workload.CountBase(stream)
	if buffered > probes/10 {
		t.Fatalf("buffers retain %d of %d probes", buffered, probes)
	}
}

// TestWatermarkBatchFinalize is a regression test for the inline-compaction
// bug: several pending bases finalized at one watermark must all see the
// probes at their window start (the first finalization's compaction must
// not evict what the later ones need).
func TestWatermarkBatchFinalize(t *testing.T) {
	w := window.Spec{Pre: 100, Fol: 0, Lateness: 50}
	cfg := engine.Config{Joiners: 1, Window: w, Agg: agg.Count, Mode: engine.OnWatermark, WatermarkEvery: 1 << 30}
	sink := &engine.CollectSink{}
	e := New(cfg, sink)
	e.Start()
	// Probes near the start of both windows.
	e.Ingest(tuple.Tuple{TS: 10, Key: 1, Side: tuple.Probe, Val: 1})
	e.Ingest(tuple.Tuple{TS: 60, Key: 1, Side: tuple.Probe, Val: 1})
	// Two bases whose windows share the early probes; both finalize at
	// the single final watermark.
	e.Ingest(tuple.Tuple{TS: 100, Key: 1, Side: tuple.Base, Seq: 0}) // [0,100]: both probes
	e.Ingest(tuple.Tuple{TS: 110, Key: 1, Side: tuple.Base, Seq: 1}) // [10,110]: both probes
	e.Drain()

	m := sink.ByBaseSeq()
	if m[0].Matches != 2 || m[1].Matches != 2 {
		t.Fatalf("batch finalize dropped probes: %+v %+v", m[0], m[1])
	}
}

// TestMatchesReference: multi-key stream, watermark mode, vs event-time
// reference.
func TestMatchesReference(t *testing.T) {
	stream := genStream(t, 30_000, 8)
	w := window.Spec{Pre: 1000, Fol: 0, Lateness: 200}
	want := refjoin.ByBaseSeq(refjoin.EventTime(stream, w, agg.Sum))
	sink := &engine.CollectSink{}
	e := New(testCfg(3, engine.OnWatermark), sink)
	replay(e, stream)
	got := sink.ByBaseSeq()
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for seq, wr := range want {
		g := got[seq]
		if g.Matches != wr.Matches || math.Abs(g.Agg-wr.Agg) > 1e-6 {
			t.Fatalf("base %d: got %+v want %+v", seq, g, wr)
		}
	}
}

// TestInstrumentation: breakdown and effectiveness are populated when
// instrumented, and effectiveness is below 1 under lateness (full scans
// visit out-of-window tuples).
func TestInstrumentation(t *testing.T) {
	stream := genStream(t, 40_000, 4)
	cfg := testCfg(2, engine.OnArrival)
	cfg.Instrument = true
	e := New(cfg, &engine.CountSink{})
	replay(e, stream)

	st := e.Stats()
	bd := st.MergedBreakdown()
	if bd.Lookup == 0 || bd.Match == 0 {
		t.Fatalf("breakdown not populated: %+v", bd)
	}
	eff := st.MergedEffectiveness()
	if eff <= 0 || eff >= 1 {
		t.Fatalf("effectiveness = %g, want in (0,1) under lateness", eff)
	}
}

// TestFollowingWindow exercises FOL > 0 in watermark mode.
func TestFollowingWindow(t *testing.T) {
	w := window.Spec{Pre: 50, Fol: 50, Lateness: 10}
	cfg := engine.Config{Joiners: 2, Window: w, Agg: agg.Count, Mode: engine.OnWatermark}
	sink := &engine.CollectSink{}
	e := New(cfg, sink)
	e.Start()
	e.Ingest(tuple.Tuple{TS: 60, Key: 1, Side: tuple.Probe, Val: 1})
	e.Ingest(tuple.Tuple{TS: 100, Key: 1, Side: tuple.Base, Seq: 0}) // window [50,150]
	e.Ingest(tuple.Tuple{TS: 140, Key: 1, Side: tuple.Probe, Val: 1})
	e.Ingest(tuple.Tuple{TS: 160, Key: 1, Side: tuple.Probe, Val: 1}) // outside
	e.Drain()
	m := sink.ByBaseSeq()
	if m[0].Matches != 2 {
		t.Fatalf("FOL window matches = %d, want 2 (ts 60 and 140)", m[0].Matches)
	}
}
