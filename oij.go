// Package oij is a scalable online interval join (OIJ) library for Go — a
// from-scratch reproduction of "Scalable Online Interval Join on Modern
// Multicore Processors in OpenMLDB" (ICDE 2023).
//
// An online interval join matches every tuple of a base stream S against
// the tuples of a probe stream R that share its key and whose event
// timestamps fall in a window *relative* to the base tuple
// ([t−PRE, t+FOL]), then aggregates the matches per base tuple — the core
// operation behind time-series features such as "sum of this user's order
// amounts in the last hour".
//
// The package exposes four interchangeable engines:
//
//   - AlgorithmScaleOIJ — the paper's contribution: an SWMR time-travel
//     index, shared processing with a dynamic balanced schedule, and
//     incremental (Subtract-on-Evict) window aggregation;
//   - AlgorithmKeyOIJ — the Flink-style key-partitioned baseline;
//   - AlgorithmSplitJoin — SplitJoin (ATC'16) adapted to OIJ semantics;
//   - AlgorithmOpenMLDB — a shared-table, read-optimized baseline
//     modelling the OpenMLDB online engine.
//
// Quick start:
//
//	j, _ := oij.NewJoiner(oij.Options{
//		Window:   oij.Window{Pre: time.Second, Lateness: 100 * time.Millisecond},
//		Agg:      oij.Sum,
//		Parallel: 8,
//		OnResult: func(r oij.Result) { fmt.Println(r) },
//	})
//	j.PushProbe(key, eventTime, value)
//	j.PushBase(key, eventTime, 0)
//	j.Close()
//
// or declare the join in OpenMLDB SQL with ParseQuery. See the examples/
// directory and DESIGN.md for the architecture.
package oij

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"oij/internal/agg"
	"oij/internal/engine"
	"oij/internal/harness"
	"oij/internal/tuple"
	"oij/internal/window"
)

// Key identifies a join key (pre-hash string keys with HashString).
type Key = tuple.Key

// Result is the aggregate emitted for one base tuple.
type Result = tuple.Result

// AggFunc selects the aggregation operator.
type AggFunc = agg.Func

// Aggregation operators. Sum, Count and Avg are invertible and get
// Subtract-on-Evict incremental processing; Min, Max, Last and First use
// the two-stacks sliding window. Last (the most recent matching row's
// value) is the aggregation behind OpenMLDB's LAST JOIN.
const (
	Sum   = agg.Sum
	Count = agg.Count
	Avg   = agg.Avg
	Min   = agg.Min
	Max   = agg.Max
	Last  = agg.Last
	First = agg.First
)

// Algorithm selects the join engine.
type Algorithm string

// Available algorithms. The Scale-OIJ ablation variants (used by the
// benchmark harness) are also accepted by NewJoiner: "scale-oij-noinc",
// "scale-oij-nodyn", "scale-oij-static".
const (
	AlgorithmScaleOIJ  Algorithm = harness.ScaleOIJ
	AlgorithmKeyOIJ    Algorithm = harness.KeyOIJ
	AlgorithmSplitJoin Algorithm = harness.SplitJoin
	AlgorithmOpenMLDB  Algorithm = harness.OpenMLDB
)

// Window is the public window specification in time.Duration units.
type Window struct {
	// Pre is how far the window reaches before each base tuple.
	Pre time.Duration
	// Fol is how far the window reaches after each base tuple.
	Fol time.Duration
	// Lateness bounds stream disorder: a tuple arrives at most this
	// much event time after later-stamped tuples.
	Lateness time.Duration
	// ExcludeCurrentTime drops probe tuples stamped exactly at the base
	// tuple's timestamp (OpenMLDB's EXCLUDE CURRENT_TIME); requires
	// Fol == 0.
	ExcludeCurrentTime bool
}

// spec converts to the internal µs representation.
func (w Window) spec() window.Spec {
	return window.Spec{
		Pre:                w.Pre.Microseconds(),
		Fol:                w.Fol.Microseconds(),
		Lateness:           w.Lateness.Microseconds(),
		ExcludeCurrentTime: w.ExcludeCurrentTime,
	}
}

// EmitMode re-exports the engine emission semantics.
type EmitMode = engine.EmitMode

// Emission modes: OnArrival answers each base tuple immediately from the
// currently buffered probes (serving semantics); OnWatermark waits until
// the lateness bound guarantees the window is complete (exact event-time
// semantics).
const (
	OnArrival   = engine.OnArrival
	OnWatermark = engine.OnWatermark
)

// Options configures a Joiner.
type Options struct {
	// Algorithm defaults to AlgorithmScaleOIJ.
	Algorithm Algorithm
	// Window is required.
	Window Window
	// Agg defaults to Sum.
	Agg AggFunc
	// Parallel is the joiner thread count (default 1).
	Parallel int
	// Mode defaults to OnArrival.
	Mode EmitMode
	// OnResult receives every join result; it may be called from
	// multiple goroutines (per joiner) but never concurrently for the
	// same joiner. Required.
	OnResult func(Result)
}

// Joiner is the high-level streaming interface: push tuples in arrival
// order, receive one aggregate per base tuple through OnResult.
//
// Push methods must be called from one goroutine. Close flushes pending
// windows and stops the engine.
type Joiner struct {
	eng      engine.Engine
	baseSeq  uint64
	probeSeq uint64
	closed   bool
	mu       sync.Mutex
}

// funcSink adapts OnResult to the internal Sink interface.
type funcSink struct{ fn func(Result) }

func (s funcSink) Emit(_ int, r tuple.Result) { s.fn(r) }

// NewJoiner builds and starts a Joiner.
func NewJoiner(o Options) (*Joiner, error) {
	if o.OnResult == nil {
		return nil, errors.New("oij: Options.OnResult is required")
	}
	if o.Algorithm == "" {
		o.Algorithm = AlgorithmScaleOIJ
	}
	cfg := engine.Config{
		Joiners: o.Parallel,
		Window:  o.Window.spec(),
		Agg:     o.Agg,
		Mode:    o.Mode,
	}
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("oij: %w", err)
	}
	eng, err := harness.Build(string(o.Algorithm), cfg, funcSink{o.OnResult})
	if err != nil {
		return nil, err
	}
	eng.Start()
	return &Joiner{eng: eng}, nil
}

// PushBase feeds one base-stream tuple (event time, key, payload value)
// and returns its sequence number, which identifies the matching Result.
func (j *Joiner) PushBase(key Key, eventTime time.Time, val float64) uint64 {
	seq := j.baseSeq
	j.baseSeq++
	j.eng.Ingest(tuple.Tuple{
		TS:      eventTime.UnixMicro(),
		Key:     key,
		Val:     val,
		Seq:     seq,
		Side:    tuple.Base,
		Arrival: time.Now(),
	})
	return seq
}

// PushProbe feeds one probe-stream tuple.
func (j *Joiner) PushProbe(key Key, eventTime time.Time, val float64) {
	seq := j.probeSeq
	j.probeSeq++
	j.eng.Ingest(tuple.Tuple{
		TS:   eventTime.UnixMicro(),
		Key:  key,
		Val:  val,
		Seq:  seq,
		Side: tuple.Probe,
	})
}

// Close flushes all pending windows (emitting their results) and stops the
// engine. It is idempotent.
func (j *Joiner) Close() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return
	}
	j.closed = true
	j.eng.Drain()
}

// Algorithms lists every engine variant the library can construct,
// including the Scale-OIJ ablations used by the benchmark harness.
func Algorithms() []string { return harness.Engines() }

// HashString maps a string join key to a Key with a 64-bit FNV-1a hash.
func HashString(s string) Key {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return Key(h)
}
