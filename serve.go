package oij

import (
	"net"
	"time"

	"oij/internal/engine"
	"oij/internal/server"
)

// Server serves an online interval join over TCP (see cmd/oijd and the
// examples/serving program); construct one with ListenAndServe.
type Server = server.Server

// ServerClient is the Go client for a Server's wire protocol.
type ServerClient = server.Client

// Admission policies for ServerOptions.Admission: what the server does
// when the ingest path is saturated.
const (
	// AdmissionBlock makes senders wait (the default).
	AdmissionBlock = server.AdmissionBlock
	// AdmissionShedProbes drops probe tuples under pressure; feature
	// requests still wait.
	AdmissionShedProbes = server.AdmissionShedProbes
	// AdmissionReject sheds probes and answers requests with a typed
	// NACK so clients fail fast.
	AdmissionReject = server.AdmissionReject
)

// ServerOptions configures ListenAndServe. The zero Algorithm, Agg and
// Parallel take the same defaults as Options; the zero overload knobs
// leave the corresponding protections at the server package's defaults.
type ServerOptions struct {
	// Algorithm defaults to AlgorithmScaleOIJ.
	Algorithm Algorithm
	// Window is required (its Lateness bounds stream disorder and is
	// passed through to the engine).
	Window Window
	// Agg defaults to Sum.
	Agg AggFunc
	// Parallel is the joiner thread count (default 1).
	Parallel int
	// Mode defaults to OnArrival.
	Mode EmitMode
	// WALPath, when set, appends ingested probes to a write-ahead log so
	// join state survives restarts (see Server.Recover).
	WALPath string
	// WALSync selects WAL durability: "interval" (default), "always", or
	// "none".
	WALSync string
	// Admission selects the overload admission policy: AdmissionBlock
	// (default), AdmissionShedProbes, or AdmissionReject.
	Admission string
	// RequestDeadline bounds how long a feature request may queue before
	// it is answered with a deadline NACK. Zero disables.
	RequestDeadline time.Duration
	// MemCapProbes caps buffered probe state; under pressure the server
	// sheds oldest-window probes first. Zero disables.
	MemCapProbes int64
	// SlowConsumerGrace bounds how long one stalled client may hold up
	// result delivery before its session is evicted (default 5s;
	// negative disables eviction).
	SlowConsumerGrace time.Duration
	// AdminAddr, when set, serves /metrics, /statusz and /debug/pprof
	// there (use ":0" for an ephemeral port).
	AdminAddr string
}

// ListenAndServe starts a join server on addr (use "127.0.0.1:0" for an
// ephemeral port) and returns it with its bound address. Shut it down with
// Server.Shutdown.
func ListenAndServe(o ServerOptions, addr string) (*Server, net.Addr, error) {
	if o.Algorithm == "" {
		o.Algorithm = AlgorithmScaleOIJ
	}
	srv, err := server.New(server.Config{
		Algorithm: string(o.Algorithm),
		Engine: engine.Config{
			Joiners: o.Parallel,
			Window:  o.Window.spec(),
			Agg:     o.Agg,
			Mode:    o.Mode,
		},
		WALPath:           o.WALPath,
		WALSync:           o.WALSync,
		Admission:         o.Admission,
		RequestDeadline:   o.RequestDeadline,
		MemCapProbes:      o.MemCapProbes,
		SlowConsumerGrace: o.SlowConsumerGrace,
		AdminAddr:         o.AdminAddr,
	})
	if err != nil {
		return nil, nil, err
	}
	bound, err := srv.Listen(addr)
	if err != nil {
		return nil, nil, err
	}
	return srv, bound, nil
}

// DialServer connects a client to a join server.
func DialServer(addr string) (*ServerClient, error) {
	return server.Dial(addr)
}
