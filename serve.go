package oij

import (
	"net"

	"oij/internal/engine"
	"oij/internal/server"
)

// Server serves an online interval join over TCP (see cmd/oijd and the
// examples/serving program); construct one with ListenAndServe.
type Server = server.Server

// ServerClient is the Go client for a Server's wire protocol.
type ServerClient = server.Client

// ServerOptions configures ListenAndServe. The zero Algorithm, Agg and
// Parallel take the same defaults as Options.
type ServerOptions struct {
	// Algorithm defaults to AlgorithmScaleOIJ.
	Algorithm Algorithm
	// Window is required.
	Window Window
	// Agg defaults to Sum.
	Agg AggFunc
	// Parallel is the joiner thread count (default 1).
	Parallel int
	// Mode defaults to OnArrival.
	Mode EmitMode
}

// ListenAndServe starts a join server on addr (use "127.0.0.1:0" for an
// ephemeral port) and returns it with its bound address. Shut it down with
// Server.Shutdown.
func ListenAndServe(o ServerOptions, addr string) (*Server, net.Addr, error) {
	if o.Algorithm == "" {
		o.Algorithm = AlgorithmScaleOIJ
	}
	srv, err := server.New(server.Config{
		Algorithm: string(o.Algorithm),
		Engine: engine.Config{
			Joiners: o.Parallel,
			Window:  o.Window.spec(),
			Agg:     o.Agg,
			Mode:    o.Mode,
		},
	})
	if err != nil {
		return nil, nil, err
	}
	bound, err := srv.Listen(addr)
	if err != nil {
		return nil, nil, err
	}
	return srv, bound, nil
}

// DialServer connects a client to a join server.
func DialServer(addr string) (*ServerClient, error) {
	return server.Dial(addr)
}
