package oij

import (
	"time"

	"oij/internal/sql"
)

// Query is a parsed OpenMLDB-dialect interval-join query (see ParseQuery).
type Query struct {
	spec *sql.QuerySpec
}

// ParseQuery parses an online interval join written in the OpenMLDB SQL
// dialect the paper uses (§II-A), e.g.
//
//	SELECT sum(col2) OVER w1 FROM S
//	WINDOW w1 AS (
//	  UNION R
//	  PARTITION BY key
//	  ORDER BY timestamp
//	  ROWS_RANGE BETWEEN 1s PRECEDING AND 1s FOLLOWING);
//
// One extension is accepted: a trailing "LATENESS <duration>" inside the
// window clause sets the out-of-order bound.
func ParseQuery(text string) (*Query, error) {
	spec, err := sql.Parse(text)
	if err != nil {
		return nil, err
	}
	return &Query{spec: spec}, nil
}

// Window returns the query's window specification.
func (q *Query) Window() Window {
	return Window{
		Pre:                time.Duration(q.spec.Window.Pre) * time.Microsecond,
		Fol:                time.Duration(q.spec.Window.Fol) * time.Microsecond,
		Lateness:           time.Duration(q.spec.Window.Lateness) * time.Microsecond,
		ExcludeCurrentTime: q.spec.Window.ExcludeCurrentTime,
	}
}

// Agg returns the first aggregation's operator (queries in this dialect
// have at least one).
func (q *Query) Agg() AggFunc { return q.spec.Aggs[0].Func }

// Aggregations returns every windowed aggregation in select order as
// (function, column) pairs.
func (q *Query) Aggregations() []struct {
	Func   AggFunc
	Column string
} {
	out := make([]struct {
		Func   AggFunc
		Column string
	}, len(q.spec.Aggs))
	for i, a := range q.spec.Aggs {
		out[i].Func = a.Func
		out[i].Column = a.Column
	}
	return out
}

// BaseTable returns the FROM table name (the base stream).
func (q *Query) BaseTable() string { return q.spec.BaseTable }

// ProbeTable returns the UNION table name (the probe stream).
func (q *Query) ProbeTable() string { return q.spec.ProbeTable }

// PartitionBy returns the join-key column name.
func (q *Query) PartitionBy() string { return q.spec.PartitionBy }

// OrderBy returns the event-time column name.
func (q *Query) OrderBy() string { return q.spec.OrderBy }

// Joiner builds a started Joiner executing this query with the given
// algorithm, parallelism, and result callback.
func (q *Query) Joiner(alg Algorithm, parallel int, onResult func(Result)) (*Joiner, error) {
	return NewJoiner(Options{
		Algorithm: alg,
		Window:    q.Window(),
		Agg:       q.Agg(),
		Parallel:  parallel,
		OnResult:  onResult,
	})
}
