package oij

import (
	"sync"
	"testing"
	"time"
)

func TestNewJoinerValidation(t *testing.T) {
	if _, err := NewJoiner(Options{Window: Window{Pre: time.Second}}); err == nil {
		t.Fatal("missing OnResult accepted")
	}
	if _, err := NewJoiner(Options{OnResult: func(Result) {}}); err == nil {
		t.Fatal("empty window accepted")
	}
	if _, err := NewJoiner(Options{
		Algorithm: "definitely-not-an-engine",
		Window:    Window{Pre: time.Second},
		OnResult:  func(Result) {},
	}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestJoinerEndToEnd(t *testing.T) {
	for _, alg := range []Algorithm{AlgorithmScaleOIJ, AlgorithmKeyOIJ, AlgorithmSplitJoin, AlgorithmOpenMLDB} {
		parallel := 2
		if alg == AlgorithmOpenMLDB {
			// The shared-table baseline round-robins tuples over
			// workers without preserving arrival order between them
			// (one of the paper's critiques); single-worker keeps
			// this small-scale check deterministic.
			parallel = 1
		}
		var mu sync.Mutex
		var results []Result
		j, err := NewJoiner(Options{
			Algorithm: alg,
			Window:    Window{Pre: 10 * time.Second},
			Agg:       Sum,
			Parallel:  parallel,
			OnResult: func(r Result) {
				mu.Lock()
				results = append(results, r)
				mu.Unlock()
			},
		})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		t0 := time.Unix(1_700_000_000, 0)
		const user = Key(7)
		j.PushProbe(user, t0.Add(1*time.Second), 10)
		j.PushProbe(user, t0.Add(2*time.Second), 20)
		j.PushProbe(Key(8), t0.Add(2*time.Second), 999) // other key
		seq := j.PushBase(user, t0.Add(3*time.Second), 0)
		j.Close()
		j.Close() // idempotent

		mu.Lock()
		defer mu.Unlock()
		if len(results) != 1 {
			t.Fatalf("%s: %d results", alg, len(results))
		}
		r := results[0]
		if r.BaseSeq != seq || r.Key != user {
			t.Fatalf("%s: result identity %+v", alg, r)
		}
		if r.Agg != 30 || r.Matches != 2 {
			t.Fatalf("%s: agg = %g over %d matches, want 30 over 2", alg, r.Agg, r.Matches)
		}
	}
}

func TestJoinerWatermarkMode(t *testing.T) {
	var mu sync.Mutex
	var results []Result
	j, err := NewJoiner(Options{
		Window:   Window{Pre: 5 * time.Second, Lateness: time.Second},
		Agg:      Count,
		Parallel: 3,
		Mode:     OnWatermark,
		OnResult: func(r Result) {
			mu.Lock()
			results = append(results, r)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Unix(1_700_000_000, 0)
	j.PushBase(Key(1), t0.Add(2*time.Second), 0)
	// This probe arrives after the base tuple but inside its window —
	// OnWatermark must still count it.
	j.PushProbe(Key(1), t0.Add(1*time.Second), 5)
	j.Close()

	mu.Lock()
	defer mu.Unlock()
	if len(results) != 1 || results[0].Matches != 1 {
		t.Fatalf("results = %+v", results)
	}
}

func TestHashString(t *testing.T) {
	a, b := HashString("user-42"), HashString("user-43")
	if a == b {
		t.Fatal("distinct strings collided")
	}
	if a != HashString("user-42") {
		t.Fatal("hash not deterministic")
	}
	if HashString("") == 0 {
		t.Fatal("empty-string hash should be the FNV offset basis, not 0")
	}
}

func TestAlgorithmsList(t *testing.T) {
	algs := Algorithms()
	if len(algs) < 4 {
		t.Fatalf("Algorithms() = %v", algs)
	}
}

func TestParseQueryToJoiner(t *testing.T) {
	q, err := ParseQuery(`SELECT sum(amount) OVER w FROM actions WINDOW w AS (
		UNION orders PARTITION BY user_id ORDER BY ts
		ROWS_RANGE BETWEEN 10s PRECEDING AND CURRENT ROW LATENESS 1s)`)
	if err != nil {
		t.Fatal(err)
	}
	if q.BaseTable() != "actions" || q.ProbeTable() != "orders" {
		t.Fatalf("tables: %s, %s", q.BaseTable(), q.ProbeTable())
	}
	if q.PartitionBy() != "user_id" || q.OrderBy() != "ts" {
		t.Fatalf("columns: %s, %s", q.PartitionBy(), q.OrderBy())
	}
	w := q.Window()
	if w.Pre != 10*time.Second || w.Lateness != time.Second {
		t.Fatalf("window: %+v", w)
	}
	if q.Agg() != Sum || len(q.Aggregations()) != 1 {
		t.Fatalf("aggs: %v", q.Aggregations())
	}

	var mu sync.Mutex
	total := 0.0
	j, err := q.Joiner(AlgorithmScaleOIJ, 2, func(r Result) {
		mu.Lock()
		total += r.Agg
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Unix(1_700_000_000, 0)
	u := HashString("alice")
	j.PushProbe(u, t0.Add(time.Second), 25)
	j.PushBase(u, t0.Add(2*time.Second), 0)
	j.Close()
	mu.Lock()
	defer mu.Unlock()
	if total != 25 {
		t.Fatalf("total = %g", total)
	}
}

func TestExcludeCurrentTimeEndToEnd(t *testing.T) {
	var mu sync.Mutex
	var results []Result
	j, err := NewJoiner(Options{
		Window:   Window{Pre: 10 * time.Second, ExcludeCurrentTime: true},
		Agg:      Count,
		OnResult: func(r Result) { mu.Lock(); results = append(results, r); mu.Unlock() },
	})
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Unix(1_700_000_000, 0)
	j.PushProbe(1, t0.Add(time.Second), 1)
	j.PushProbe(1, t0.Add(2*time.Second), 1) // same moment as the request
	j.PushBase(1, t0.Add(2*time.Second), 0)
	j.Close()

	mu.Lock()
	defer mu.Unlock()
	if len(results) != 1 || results[0].Matches != 1 {
		t.Fatalf("EXCLUDE CURRENT_TIME results: %+v", results)
	}
}
