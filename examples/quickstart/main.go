// Quickstart: the smallest end-to-end online interval join.
//
// A probe stream of order amounts and a base stream of page views share a
// user key; for every page view we compute the sum of that user's order
// amounts in the preceding 10 seconds — the canonical time-series feature
// from the paper's introduction.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"oij"
)

func main() {
	var mu sync.Mutex
	var results []oij.Result

	joiner, err := oij.NewJoiner(oij.Options{
		Algorithm: oij.AlgorithmScaleOIJ,
		Window:    oij.Window{Pre: 10 * time.Second, Lateness: 5 * time.Second},
		Agg:       oij.Sum,
		Parallel:  4,
		// OnWatermark waits out the declared 5s of disorder before
		// answering, so even the late order below is counted exactly.
		Mode: oij.OnWatermark,
		OnResult: func(r oij.Result) {
			mu.Lock()
			results = append(results, r)
			mu.Unlock()
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	start := time.Unix(1_700_000_000, 0)
	alice := oij.HashString("alice")
	bob := oij.HashString("bob")

	// Orders (probe stream) arrive continuously...
	joiner.PushProbe(alice, start.Add(1*time.Second), 19.99)
	joiner.PushProbe(bob, start.Add(2*time.Second), 5.00)
	joiner.PushProbe(alice, start.Add(4*time.Second), 42.50)

	// ...and each page view (base stream) asks: how much did this user
	// order in the last 10 seconds?
	joiner.PushBase(alice, start.Add(5*time.Second), 0)
	joiner.PushBase(bob, start.Add(6*time.Second), 0)

	// A late order: event time +3s, but it arrives after the +5s page
	// view was pushed. OnWatermark semantics still count it for every
	// window it belongs to.
	joiner.PushProbe(alice, start.Add(3*time.Second), 7.49)
	joiner.PushBase(alice, start.Add(7*time.Second), 0)

	joiner.Close()

	mu.Lock()
	defer mu.Unlock()
	sort.Slice(results, func(i, j int) bool { return results[i].BaseTS < results[j].BaseTS })
	for _, r := range results {
		who := "bob"
		if r.Key == alice {
			who = "alice"
		}
		fmt.Printf("t=+%ds user=%-5s orders_in_last_10s: sum=%.2f over %d orders\n",
			(r.BaseTS-start.UnixMicro())/1_000_000, who, r.Agg, r.Matches)
	}
}
