// Recommendation: the paper's motivating retail scenario, declared in the
// OpenMLDB SQL dialect.
//
// While a user browses (action stream = base), the recommender needs
// features over the user's recent order history (order stream = probe):
// the SQL below asks for the sum of order amounts in the last hour per
// action. The example synthesizes an afternoon of both streams, replays
// them in arrival order, executes the query with Scale-OIJ, and prints the
// feature values alongside an independent recomputation.
//
// Run with:
//
//	go run ./examples/recommendation
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"sync"
	"time"

	"oij"
)

const featureSQL = `
SELECT sum(amount) OVER w1 FROM actions
WINDOW w1 AS (
  UNION orders
  PARTITION BY user_id
  ORDER BY event_time
  ROWS_RANGE BETWEEN 1h PRECEDING AND CURRENT ROW
  LATENESS 5s);`

// event is one record of either stream.
type event struct {
	user   string
	at     time.Time
	amount float64 // order amount; 0 for actions
	action bool
	seq    uint64
}

func main() {
	query, err := oij.ParseQuery(featureSQL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: %s ⋈ %s on %s, window [-%v, +%v], lateness %v, agg %v\n\n",
		query.BaseTable(), query.ProbeTable(), query.PartitionBy(),
		query.Window().Pre, query.Window().Fol, query.Window().Lateness, query.Agg())

	var mu sync.Mutex
	features := map[uint64]oij.Result{}
	joiner, err := query.Joiner(oij.AlgorithmScaleOIJ, 4, func(r oij.Result) {
		mu.Lock()
		features[r.BaseSeq] = r
		mu.Unlock()
	})
	if err != nil {
		log.Fatal(err)
	}

	// Synthesize one afternoon of traffic for three users: 200 orders
	// spread over two hours, and browsing actions in the second hour
	// (when the one-hour windows are populated).
	rng := rand.New(rand.NewSource(7))
	users := []string{"u-1001", "u-1002", "u-1003"}
	start := time.Unix(1_700_000_000, 0)

	var evs []event
	for i := 0; i < 200; i++ {
		evs = append(evs, event{
			user:   users[rng.Intn(len(users))],
			at:     start.Add(time.Duration(rng.Intn(7200)) * time.Second),
			amount: 5 + rng.Float64()*95,
		})
	}
	for i := 0; i < 6; i++ {
		evs = append(evs, event{
			user:   users[i%len(users)],
			at:     start.Add(time.Duration(3700+rng.Intn(3400)) * time.Second),
			action: true,
		})
	}

	// Replay in event-time order with a touch of bounded disorder (the
	// query's LATENESS 5s tolerates it).
	sort.Slice(evs, func(i, j int) bool { return evs[i].at.Before(evs[j].at) })
	for i := range evs {
		if rng.Float64() < 0.3 {
			evs[i].at = evs[i].at.Add(-time.Duration(rng.Intn(5)) * time.Second)
		}
	}
	for i := range evs {
		key := oij.HashString(evs[i].user)
		if evs[i].action {
			evs[i].seq = joiner.PushBase(key, evs[i].at, 0)
		} else {
			joiner.PushProbe(key, evs[i].at, evs[i].amount)
		}
	}
	joiner.Close()

	// Print each feature with an independent recomputation. OnArrival
	// semantics: an order counts if it arrived before the action and
	// its event time is inside the action's one-hour window.
	mu.Lock()
	defer mu.Unlock()
	for i := range evs {
		a := evs[i]
		if !a.action {
			continue
		}
		r := features[a.seq]
		var check float64
		var n int64
		for j := 0; j < i; j++ {
			o := evs[j]
			if !o.action && o.user == a.user && !o.at.After(a.at) && !o.at.Before(a.at.Add(-time.Hour)) {
				check += o.amount
				n++
			}
		}
		status := "OK"
		if n != r.Matches || abs(check-r.Agg) > 1e-6 {
			status = fmt.Sprintf("MISMATCH (want %.2f over %d)", check, n)
		}
		fmt.Printf("action user=%s at=+%4.0fmin  spend_last_1h=%8.2f over %3d orders  [%s]\n",
			a.user, a.at.Sub(start).Minutes(), r.Agg, r.Matches, status)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
