// Serving: the full OpenMLDB-style deployment shape in one process — a
// TCP join server (the same engine cmd/oijd runs), a data producer
// streaming order events, and a feature client issuing requests over the
// wire and reading back aggregates.
//
// Run with:
//
//	go run ./examples/serving
package main

import (
	"fmt"
	"log"
	"time"

	"oij"
)

func main() {
	srv, addr, err := oij.ListenAndServe(oij.ServerOptions{
		Window:   oij.Window{Pre: 30 * time.Second, Lateness: time.Second},
		Agg:      oij.Sum,
		Parallel: 4,
	}, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Shutdown()
	fmt.Printf("join server listening on %s\n", addr)

	// A producer service streams order events...
	producer, err := oij.DialServer(addr.String())
	if err != nil {
		log.Fatal(err)
	}
	defer producer.Close()

	start := time.Unix(1_700_000_000, 0)
	users := []string{"ann", "bob", "cat"}
	amounts := map[string][]float64{
		"ann": {12.50, 3.00, 99.99},
		"bob": {5.25},
		"cat": {42.00, 58.00},
	}
	for i, u := range users {
		for k, amt := range amounts[u] {
			ts := start.Add(time.Duration(i*3+k) * time.Second)
			if err := producer.SendProbe(oij.HashString(u), ts.UnixMicro(), amt); err != nil {
				log.Fatal(err)
			}
		}
	}
	// Barrier: make sure the server ingested everything before querying.
	if err := producer.Barrier(); err != nil {
		log.Fatal(err)
	}
	if _, err := producer.RecvResults(5 * time.Second); err != nil {
		log.Fatal(err)
	}

	// ...and a separate feature service asks, per user: how much did they
	// order in the last 30 seconds?
	client, err := oij.DialServer(addr.String())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	queryAt := start.Add(10 * time.Second)
	seqToUser := map[uint64]string{}
	for _, u := range users {
		seq, err := client.SendBase(oij.HashString(u), queryAt.UnixMicro(), 0)
		if err != nil {
			log.Fatal(err)
		}
		seqToUser[seq] = u
	}
	if err := client.Barrier(); err != nil {
		log.Fatal(err)
	}
	results, err := client.RecvResults(5 * time.Second)
	if err != nil {
		log.Fatal(err)
	}

	for _, r := range results {
		fmt.Printf("user=%-4s spend_last_30s=%7.2f over %d orders\n",
			seqToUser[r.Seq], r.Agg, r.Matches)
	}
}
