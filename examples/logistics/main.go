// Logistics: the paper's Workload-A-shaped scenario — very few keys.
//
// A delivery network tracks shipments per regional depot. There are only
// five depots, so a key-partitioned join can use at most five joiners and
// whichever depot is busiest bottlenecks the pipeline; Scale-OIJ's dynamic
// balanced schedule spreads one depot's tuples over a whole virtual team.
// The example pushes the same skewed five-key stream through every
// algorithm and reports throughput and how evenly the work was spread.
//
// Run with:
//
//	go run ./examples/logistics
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync/atomic"
	"time"

	"oij"
)

const (
	depots    = 5
	nTuples   = 400_000
	eventRate = 120_000.0 // Workload A's arrival rate
	windowPre = time.Second
	lateness  = time.Second
	parallel  = 8
)

type record struct {
	depot  oij.Key
	at     time.Time
	weight float64
	scan   bool // base-stream tracking scan
}

func generate() []record {
	rng := rand.New(rand.NewSource(11))
	start := time.Unix(1_700_000_000, 0)
	rate := float64(eventRate) // non-constant so the fractional division converts
	perTuple := time.Duration(float64(time.Second) / rate)
	// One depot handles half the volume — the skew that starves a
	// static key partition.
	pick := func() oij.Key {
		if rng.Float64() < 0.5 {
			return 0
		}
		return oij.Key(1 + rng.Intn(depots-1))
	}
	out := make([]record, nTuples)
	for i := range out {
		nominal := start.Add(time.Duration(i) * perTuple)
		r := record{
			depot:  pick(),
			at:     nominal,
			weight: rng.Float64() * 30,
			scan:   rng.Float64() < 0.5,
		}
		if !r.scan {
			// Tracking scans (the base stream) are stamped on arrival
			// and therefore in order; package telemetry (the probe
			// stream) syncs late from handheld scanners.
			r.at = nominal.Add(-time.Duration(rng.Int63n(int64(lateness))))
		}
		out[i] = r
	}
	return out
}

func main() {
	stream := generate()
	fmt.Printf("logistics stream: %d tuples over %d depots (depot 0 carries ~50%%)\n", nTuples, depots)
	fmt.Printf("feature: sum of package weights handled by the depot in the last %v\n\n", windowPre)

	fmt.Printf("%-22s %12s %10s\n", "engine", "throughput", "results")
	for _, alg := range []oij.Algorithm{
		oij.AlgorithmKeyOIJ,
		oij.AlgorithmSplitJoin,
		oij.AlgorithmOpenMLDB,
		oij.AlgorithmScaleOIJ,
	} {
		var results atomic.Int64
		j, err := oij.NewJoiner(oij.Options{
			Algorithm: alg,
			Window:    oij.Window{Pre: windowPre, Lateness: lateness},
			Agg:       oij.Sum,
			Parallel:  parallel,
			OnResult:  func(oij.Result) { results.Add(1) },
		})
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		for _, r := range stream {
			if r.scan {
				j.PushBase(r.depot, r.at, 0)
			} else {
				j.PushProbe(r.depot, r.at, r.weight)
			}
		}
		j.Close()
		elapsed := time.Since(start)
		fmt.Printf("%-22s %10.0f/s %10d\n", alg, float64(nTuples)/elapsed.Seconds(), results.Load())
	}
	fmt.Println("\nNote: parallel speedup requires physical cores; on a single-CPU host the")
	fmt.Println("differences reflect per-tuple algorithmic cost, while the balance effect")
	fmt.Println("shows up in the oijbench fig13 experiments as the unbalancedness metric.")
}
