// Fraud: an anti-fraud scenario with heavy disorder and a strict latency
// budget — the paper's Workload-C-shaped case.
//
// Authorization requests (base stream) must be answered within 20 ms
// (§II-A: "a 20 ms latency is strictly required by an online banking
// service"), aggregating the card's recent transactions (probe stream).
// Mobile terminals sync in batches, so transactions arrive with lateness
// far beyond the window: buffers are dominated by out-of-window data,
// which is exactly where the time-travel index of Scale-OIJ beats the
// full scans of Key-OIJ. The example replays the same paced stream
// through both engines and prints the resulting latency profile.
//
// Run with:
//
//	go run ./examples/fraud
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"sync"
	"time"

	"oij"
)

const (
	cards       = 64
	nTuples     = 150_000
	probeShare  = 0.30
	eventRate   = 400_000.0               // tuples per second of event time
	pacedRate   = 250_000.0               // replay pacing (tuples/s wall clock)
	windowPre   = 50 * time.Millisecond   // transactions relevant per auth
	lateness    = 1500 * time.Millisecond // mobile batch-sync disorder
	budget      = 20 * time.Millisecond
	maxParallel = 8
)

// tx is one generated stream record.
type tx struct {
	card   oij.Key
	at     time.Time
	amount float64
	auth   bool // base-stream authorization request
}

func generate() []tx {
	rng := rand.New(rand.NewSource(99))
	start := time.Unix(1_700_000_000, 0)
	out := make([]tx, nTuples)
	perTuple := time.Duration(float64(time.Second) / eventRate)
	for i := range out {
		nominal := start.Add(time.Duration(i) * perTuple)
		t := tx{
			card:   oij.Key(rng.Intn(cards)),
			at:     nominal,
			amount: 1 + rng.Float64()*500,
			auth:   rng.Float64() > probeShare,
		}
		if !t.auth {
			// Authorization requests (base stream) are stamped on
			// arrival and in order; transactions sync late from
			// mobile terminals, up to `lateness` behind.
			t.at = nominal.Add(-time.Duration(rng.Int63n(int64(lateness))))
		}
		out[i] = t
	}
	return out
}

// run replays the stream through one algorithm and returns sorted
// authorization latencies.
func run(alg oij.Algorithm, stream []tx) []time.Duration {
	var mu sync.Mutex
	pushTimes := map[uint64]time.Time{}
	var lats []time.Duration

	j, err := oij.NewJoiner(oij.Options{
		Algorithm: alg,
		Window:    oij.Window{Pre: windowPre, Lateness: lateness},
		Agg:       oij.Sum,
		Parallel:  maxParallel,
		OnResult: func(r oij.Result) {
			now := time.Now()
			mu.Lock()
			if t0, ok := pushTimes[r.BaseSeq]; ok {
				lats = append(lats, now.Sub(t0))
			}
			mu.Unlock()
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	interval := time.Duration(float64(time.Second) / pacedRate * 64)
	next := time.Now()
	for i, t := range stream {
		if i%64 == 0 {
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
			next = next.Add(interval)
		}
		if t.auth {
			now := time.Now()
			seq := j.PushBase(t.card, t.at, 0)
			mu.Lock()
			pushTimes[seq] = now
			mu.Unlock()
		} else {
			j.PushProbe(t.card, t.at, t.amount)
		}
	}
	j.Close()

	mu.Lock()
	defer mu.Unlock()
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	return lats
}

func pct(lats []time.Duration, q float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	return lats[int(q*float64(len(lats)-1))]
}

func main() {
	stream := generate()
	fmt.Printf("anti-fraud stream: %d tuples, %d cards, window %v, lateness %v (%.0fx the window)\n\n",
		nTuples, cards, windowPre, lateness, float64(lateness)/float64(windowPre))

	fmt.Printf("%-12s %10s %10s %10s %12s\n", "engine", "p50", "p99", "max", "<20ms budget")
	for _, alg := range []oij.Algorithm{oij.AlgorithmKeyOIJ, oij.AlgorithmScaleOIJ} {
		lats := run(alg, stream)
		within := 0
		for _, l := range lats {
			if l <= budget {
				within++
			}
		}
		fmt.Printf("%-12s %10v %10v %10v %11.1f%%\n",
			alg,
			pct(lats, 0.50).Round(10*time.Microsecond),
			pct(lats, 0.99).Round(10*time.Microsecond),
			pct(lats, 1.0).Round(10*time.Microsecond),
			100*float64(within)/float64(len(lats)))
	}
}
