module oij

go 1.22
