package oij

// One testing.B benchmark per table/figure of the paper, plus ablation
// benches for the design choices DESIGN.md calls out. Each benchmark
// reports throughput as tuples/sec (custom metric) so `go test -bench=.`
// regenerates the evaluation series; `cmd/oijbench` renders the same
// experiments as formatted tables with richer metrics.
//
// b.N counts *tuples processed*: each iteration batch replays a
// pre-generated stream slice through a fresh engine.

import (
	"fmt"
	"testing"

	"oij/internal/agg"
	"oij/internal/engine"
	"oij/internal/harness"
	"oij/internal/tuple"
	"oij/internal/workload"
)

// benchN is the stream length per engine construction; b.N is consumed in
// chunks of this size.
const benchN = 120_000

// runEngine replays tuples through a fresh engine once and returns the
// tuple count.
func runEngine(b *testing.B, name string, wl workload.Config, tuples []tuple.Tuple, joiners int) {
	b.Helper()
	cfg := engine.Config{Joiners: joiners, Window: wl.Window, Agg: agg.Sum}
	eng, err := harness.Build(name, cfg, &engine.CountSink{})
	if err != nil {
		b.Fatal(err)
	}
	eng.Start()
	for i := range tuples {
		eng.Ingest(tuples[i])
	}
	eng.Drain()
}

// benchWorkload measures one (engine, workload, joiners) combination.
func benchWorkload(b *testing.B, name string, wl workload.Config, joiners int) {
	b.Helper()
	wl.N = benchN
	tuples, err := wl.Generate()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	done := 0
	for done < b.N {
		n := b.N - done
		if n > len(tuples) {
			n = len(tuples)
		}
		runEngine(b, name, wl, tuples[:n], joiners)
		done += n
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tuples/sec")
}

// fourEngines is the engine set of Figs. 17-20.
var fourEngines = []string{harness.KeyOIJ, harness.ScaleOIJ, harness.ScaleOIJNoInc, harness.SplitJoin}

// BenchmarkFig04KeyOIJScalability is Fig. 4: Key-OIJ across thread counts
// on the four real workloads.
func BenchmarkFig04KeyOIJScalability(b *testing.B) {
	for _, wl := range []workload.Config{workload.A(1), workload.B(1), workload.C(1), workload.D(1)} {
		for _, j := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("workload=%s/joiners=%d", wl.Name, j), func(b *testing.B) {
				benchWorkload(b, harness.KeyOIJ, wl, j)
			})
		}
	}
}

// BenchmarkFig07Lateness is Fig. 7: Key-OIJ under growing lateness.
func BenchmarkFig07Lateness(b *testing.B) {
	for _, l := range []tuple.Time{100, 1_000, 10_000, 20_000} {
		b.Run(fmt.Sprintf("lateness=%dus", l), func(b *testing.B) {
			wl := workload.DefaultSynthetic(1)
			wl.Window.Lateness = l
			wl.Disorder = l
			benchWorkload(b, harness.KeyOIJ, wl, 16)
		})
	}
}

// BenchmarkFig08Keys is Fig. 8a: Key-OIJ under varying unique keys.
func BenchmarkFig08Keys(b *testing.B) {
	for _, u := range []int{1, 10, 100, 1_000, 10_000} {
		b.Run(fmt.Sprintf("keys=%d", u), func(b *testing.B) {
			wl := workload.DefaultSynthetic(1)
			wl.Keys = u
			benchWorkload(b, harness.KeyOIJ, wl, 16)
		})
	}
}

// BenchmarkFig09Window is Fig. 9: Key-OIJ under growing windows.
func BenchmarkFig09Window(b *testing.B) {
	for _, w := range []tuple.Time{100, 1_000, 10_000, 50_000} {
		b.Run(fmt.Sprintf("window=%dus", w), func(b *testing.B) {
			wl := workload.DefaultSynthetic(1)
			wl.Window.Pre = w
			benchWorkload(b, harness.KeyOIJ, wl, 16)
		})
	}
}

// BenchmarkFig11LatenessAblation is Fig. 11: Key-OIJ vs Scale-OIJ as
// lateness grows — the time-travel-index ablation.
func BenchmarkFig11LatenessAblation(b *testing.B) {
	for _, e := range []string{harness.KeyOIJ, harness.ScaleOIJ} {
		for _, l := range []tuple.Time{100, 10_000, 50_000} {
			b.Run(fmt.Sprintf("engine=%s/lateness=%dus", e, l), func(b *testing.B) {
				wl := workload.DefaultSynthetic(1)
				wl.Window.Lateness = l
				wl.Disorder = l
				benchWorkload(b, e, wl, 16)
			})
		}
	}
}

// BenchmarkFig13KeysAblation is Fig. 13b: both engines across key counts —
// the dynamic-schedule ablation.
func BenchmarkFig13KeysAblation(b *testing.B) {
	for _, e := range []string{harness.KeyOIJ, harness.ScaleOIJ} {
		for _, u := range []int{5, 100, 10_000} {
			b.Run(fmt.Sprintf("engine=%s/keys=%d", e, u), func(b *testing.B) {
				wl := workload.DefaultSynthetic(1)
				wl.Keys = u
				benchWorkload(b, e, wl, 16)
			})
		}
	}
}

// BenchmarkFig16IncrementalAblation is Fig. 16: the incremental-window-
// aggregation ablation across window sizes.
func BenchmarkFig16IncrementalAblation(b *testing.B) {
	for _, e := range []string{harness.KeyOIJ, harness.ScaleOIJNoInc, harness.ScaleOIJ} {
		for _, w := range []tuple.Time{1_000, 25_000, 50_000} {
			b.Run(fmt.Sprintf("engine=%s/window=%dus", e, w), func(b *testing.B) {
				wl := workload.DefaultSynthetic(1)
				wl.Window.Pre = w
				benchWorkload(b, e, wl, 16)
			})
		}
	}
}

// benchRealWorkload builds the Figs. 17-20 benchmark for one real workload.
func benchRealWorkload(b *testing.B, wl workload.Config) {
	for _, e := range fourEngines {
		for _, j := range []int{1, 16} {
			b.Run(fmt.Sprintf("engine=%s/joiners=%d", e, j), func(b *testing.B) {
				benchWorkload(b, e, wl, j)
			})
		}
	}
}

// BenchmarkFig17WorkloadA is Fig. 17 (Workload A: 5 keys, 1s window).
func BenchmarkFig17WorkloadA(b *testing.B) { benchRealWorkload(b, workload.A(1)) }

// BenchmarkFig18WorkloadB is Fig. 18 (Workload B: large windows).
func BenchmarkFig18WorkloadB(b *testing.B) { benchRealWorkload(b, workload.B(1)) }

// BenchmarkFig19WorkloadC is Fig. 19 (Workload C: extreme lateness).
func BenchmarkFig19WorkloadC(b *testing.B) { benchRealWorkload(b, workload.C(1)) }

// BenchmarkFig20WorkloadD is Fig. 20 (Workload D: low arrival rate).
func BenchmarkFig20WorkloadD(b *testing.B) { benchRealWorkload(b, workload.D(1)) }

// BenchmarkFig21TableV is Fig. 21: the Key-OIJ-favouring synthetic
// workload (Table V).
func BenchmarkFig21TableV(b *testing.B) {
	for _, e := range []string{harness.KeyOIJ, harness.ScaleOIJ, harness.SplitJoin} {
		b.Run("engine="+e, func(b *testing.B) {
			benchWorkload(b, e, workload.TableV(1), 16)
		})
	}
}

// BenchmarkFig22OpenMLDB is Figs. 22/23: Scale-OIJ vs the OpenMLDB-style
// baseline on the real workloads.
func BenchmarkFig22OpenMLDB(b *testing.B) {
	for _, wl := range []workload.Config{workload.A(1), workload.B(1), workload.C(1), workload.D(1)} {
		for _, e := range []string{harness.OpenMLDB, harness.ScaleOIJ} {
			b.Run(fmt.Sprintf("workload=%s/engine=%s", wl.Name, e), func(b *testing.B) {
				benchWorkload(b, e, wl, 16)
			})
		}
	}
}

// BenchmarkAblationSharedProcessing isolates the shared-processing layer
// (static teams vs mask-based team reads) — a design-choice bench beyond
// the paper's figures.
func BenchmarkAblationSharedProcessing(b *testing.B) {
	for _, e := range []string{harness.ScaleOIJStatic, harness.ScaleOIJNoDyn, harness.ScaleOIJ} {
		b.Run("variant="+e, func(b *testing.B) {
			wl := workload.DefaultSynthetic(1)
			wl.Keys = 5
			benchWorkload(b, e, wl, 8)
		})
	}
}

// BenchmarkEmitModes compares arrival vs watermark emission overhead.
func BenchmarkEmitModes(b *testing.B) {
	wl := workload.DefaultSynthetic(1)
	wl.N = benchN
	tuples, err := wl.Generate()
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []engine.EmitMode{engine.OnArrival, engine.OnWatermark} {
		b.Run("mode="+mode.String(), func(b *testing.B) {
			done := 0
			for done < b.N {
				n := b.N - done
				if n > len(tuples) {
					n = len(tuples)
				}
				cfg := engine.Config{Joiners: 8, Window: wl.Window, Agg: agg.Sum, Mode: mode}
				eng, err := harness.Build(harness.ScaleOIJ, cfg, &engine.CountSink{})
				if err != nil {
					b.Fatal(err)
				}
				eng.Start()
				for i := 0; i < n; i++ {
					eng.Ingest(tuples[i])
				}
				eng.Drain()
				done += n
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tuples/sec")
		})
	}
}
