package oij_test

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"oij"
)

// ExampleNewJoiner computes a classic time-series feature: the sum of a
// user's order amounts in the 10 seconds before each page view.
func ExampleNewJoiner() {
	var (
		mu      sync.Mutex
		results []oij.Result
	)
	j, err := oij.NewJoiner(oij.Options{
		Window:   oij.Window{Pre: 10 * time.Second, Lateness: time.Second},
		Agg:      oij.Sum,
		Parallel: 2,
		OnResult: func(r oij.Result) {
			mu.Lock()
			results = append(results, r)
			mu.Unlock()
		},
	})
	if err != nil {
		panic(err)
	}

	start := time.Unix(1_700_000_000, 0)
	alice := oij.HashString("alice")
	j.PushProbe(alice, start.Add(1*time.Second), 19.99) // an order
	j.PushProbe(alice, start.Add(4*time.Second), 30.01) // another order
	j.PushBase(alice, start.Add(5*time.Second), 0)      // a page view
	j.Close()

	mu.Lock()
	defer mu.Unlock()
	fmt.Printf("spend_last_10s = %.2f over %d orders\n", results[0].Agg, results[0].Matches)
	// Output:
	// spend_last_10s = 50.00 over 2 orders
}

// ExampleParseQuery declares the same join in the OpenMLDB SQL dialect the
// paper uses (§II-A).
func ExampleParseQuery() {
	q, err := oij.ParseQuery(`
		SELECT sum(amount) OVER w1 FROM actions
		WINDOW w1 AS (
		  UNION orders
		  PARTITION BY user_id
		  ORDER BY event_time
		  ROWS_RANGE BETWEEN 1h PRECEDING AND CURRENT ROW
		  LATENESS 5s)`)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s joins %s on %s; window reaches back %v with %v lateness\n",
		q.BaseTable(), q.ProbeTable(), q.PartitionBy(), q.Window().Pre, q.Window().Lateness)
	// Output:
	// actions joins orders on user_id; window reaches back 1h0m0s with 5s lateness
}

// ExampleJoiner_watermarkMode shows exact event-time semantics: a probe
// arriving after the request it belongs to is still counted, because
// OnWatermark waits out the declared disorder bound.
func ExampleJoiner_watermarkMode() {
	var (
		mu      sync.Mutex
		results []oij.Result
	)
	j, err := oij.NewJoiner(oij.Options{
		Window: oij.Window{Pre: 5 * time.Second, Lateness: 2 * time.Second},
		Agg:    oij.Count,
		Mode:   oij.OnWatermark,
		OnResult: func(r oij.Result) {
			mu.Lock()
			results = append(results, r)
			mu.Unlock()
		},
	})
	if err != nil {
		panic(err)
	}
	start := time.Unix(1_700_000_000, 0)
	k := oij.Key(1)
	j.PushBase(k, start.Add(3*time.Second), 0)  // the request arrives first...
	j.PushProbe(k, start.Add(2*time.Second), 1) // ...its data arrives late
	j.Close()

	mu.Lock()
	defer mu.Unlock()
	sort.Slice(results, func(a, b int) bool { return results[a].BaseSeq < results[b].BaseSeq })
	fmt.Printf("matches = %d\n", results[0].Matches)
	// Output:
	// matches = 1
}
