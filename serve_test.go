package oij

import (
	"testing"
	"time"
)

func TestListenAndServeRoundTrip(t *testing.T) {
	srv, addr, err := ListenAndServe(ServerOptions{
		Window:   Window{Pre: 10 * time.Second, Lateness: 100 * time.Millisecond},
		Agg:      Count,
		Parallel: 2,
	}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	c, err := DialServer(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	t0 := time.Unix(1_700_000_000, 0)
	k := HashString("k")
	for i := 0; i < 5; i++ {
		if err := c.SendProbe(k, t0.Add(time.Duration(i)*time.Second).UnixMicro(), 1); err != nil {
			t.Fatal(err)
		}
	}
	seq, err := c.SendBase(k, t0.Add(6*time.Second).UnixMicro(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Barrier(); err != nil {
		t.Fatal(err)
	}
	rs, err := c.RecvResults(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].Seq != seq || rs[0].Matches != 5 {
		t.Fatalf("results = %+v", rs)
	}
	if srv.Served() != 6 {
		t.Fatalf("served = %d", srv.Served())
	}
}

func TestListenAndServeValidation(t *testing.T) {
	if _, _, err := ListenAndServe(ServerOptions{}, "127.0.0.1:0"); err == nil {
		t.Fatal("empty window accepted")
	}
	if _, _, err := ListenAndServe(ServerOptions{
		Algorithm: "nope",
		Window:    Window{Pre: time.Second},
	}, "127.0.0.1:0"); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}
