package oij

import (
	"testing"
	"time"
)

func TestListenAndServeRoundTrip(t *testing.T) {
	srv, addr, err := ListenAndServe(ServerOptions{
		Window:   Window{Pre: 10 * time.Second, Lateness: 100 * time.Millisecond},
		Agg:      Count,
		Parallel: 2,
	}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	c, err := DialServer(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	t0 := time.Unix(1_700_000_000, 0)
	k := HashString("k")
	for i := 0; i < 5; i++ {
		if err := c.SendProbe(k, t0.Add(time.Duration(i)*time.Second).UnixMicro(), 1); err != nil {
			t.Fatal(err)
		}
	}
	seq, err := c.SendBase(k, t0.Add(6*time.Second).UnixMicro(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Barrier(); err != nil {
		t.Fatal(err)
	}
	rs, err := c.RecvResults(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].Seq != seq || rs[0].Matches != 5 {
		t.Fatalf("results = %+v", rs)
	}
	if srv.Served() != 6 {
		t.Fatalf("served = %d", srv.Served())
	}
}

// TestServerOptionsPassthrough pins every ServerOptions knob to the running
// server: the overload and WAL settings must show up on Statusz, and the
// window's Lateness must actually gate emission (OnWatermark results are
// withheld until the watermark — maxTS − Lateness — passes the request).
func TestServerOptionsPassthrough(t *testing.T) {
	srv, addr, err := ListenAndServe(ServerOptions{
		Window:            Window{Pre: 10 * time.Second, Lateness: 500 * time.Millisecond},
		Agg:               Count,
		Parallel:          2,
		Mode:              OnWatermark,
		WALPath:           t.TempDir() + "/serve.wal",
		WALSync:           "always",
		Admission:         AdmissionShedProbes,
		RequestDeadline:   30 * time.Second,
		MemCapProbes:      1 << 20,
		SlowConsumerGrace: 2 * time.Second,
	}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	st := srv.Statusz()
	if st.Overload.Admission != AdmissionShedProbes {
		t.Errorf("admission = %q", st.Overload.Admission)
	}
	if st.Overload.RequestDeadlineMs != 30_000 {
		t.Errorf("request deadline = %vms", st.Overload.RequestDeadlineMs)
	}
	if st.Overload.MemCapProbes != 1<<20 {
		t.Errorf("mem cap = %d", st.Overload.MemCapProbes)
	}
	if st.Overload.SlowGraceMs != 2000 {
		t.Errorf("slow grace = %vms", st.Overload.SlowGraceMs)
	}
	if st.WALSync != "always" {
		t.Errorf("wal sync = %q", st.WALSync)
	}

	c, err := DialServer(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	t0 := time.Unix(1_700_000_000, 0)
	k := HashString("k")
	if err := c.SendProbe(k, t0.UnixMicro(), 1); err != nil {
		t.Fatal(err)
	}
	base := t0.Add(time.Second)
	seq, err := c.SendBase(k, base.UnixMicro(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// maxTS reaches base+400ms: the watermark sits at base−100ms, so the
	// request must stay open. Were Lateness dropped on the way to the
	// engine, the watermark would already have passed the base and the
	// answer (plus the flush ack) would arrive immediately.
	if err := c.SendProbe(k+1, base.Add(400*time.Millisecond).UnixMicro(), 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Barrier(); err != nil {
		t.Fatal(err)
	}
	if rs, err := c.RecvResults(400 * time.Millisecond); err == nil {
		t.Fatalf("request answered before lateness bound: %+v", rs)
	}
	// maxTS reaches base+600ms: the watermark passes the base and the
	// held answer is released.
	if err := c.SendProbe(k+1, base.Add(600*time.Millisecond).UnixMicro(), 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Barrier(); err != nil {
		t.Fatal(err)
	}
	rs, err := c.RecvResults(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].Seq != seq || rs[0].Matches != 1 {
		t.Fatalf("results = %+v", rs)
	}
}

func TestListenAndServeValidation(t *testing.T) {
	if _, _, err := ListenAndServe(ServerOptions{}, "127.0.0.1:0"); err == nil {
		t.Fatal("empty window accepted")
	}
	if _, _, err := ListenAndServe(ServerOptions{
		Algorithm: "nope",
		Window:    Window{Pre: time.Second},
	}, "127.0.0.1:0"); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}
